let init_to_string = function
  | Some false -> "0"
  | Some true -> "1"
  | None -> "x"

let init_of_string lineno = function
  | "0" -> Some false
  | "1" -> Some true
  | "x" -> None
  | s -> failwith (Printf.sprintf "emn line %d: bad latch init %S" lineno s)

let signal_to_string s =
  let id = Netlist.node_of s in
  if Netlist.is_complement s then "!" ^ string_of_int id else string_of_int id

let check_name name =
  String.iter
    (fun c ->
      if c = ' ' || c = '\t' || c = '\n' || c = '#' then
        invalid_arg (Printf.sprintf "Netio: name %S contains reserved characters" name))
    name

let to_string net =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "emn 1";
  for id = 1 to Netlist.num_nodes net - 1 do
    match Netlist.node net id with
    | Netlist.Const_false -> ()
    | Netlist.Input name ->
      check_name name;
      line "node %d input %s" id name
    | Netlist.Latch { name; init; _ } ->
      check_name name;
      line "node %d latch %s %s" id name (init_to_string init)
    | Netlist.And (a, b) -> line "node %d and %s %s" id (signal_to_string a) (signal_to_string b)
    | Netlist.Mem_out _ -> () (* reconstructed from the rport lines *)
  done;
  List.iter
    (fun m ->
      check_name (Netlist.memory_name m);
      let init =
        match Netlist.memory_init m with
        | Netlist.Zeros -> "zeros"
        | Netlist.Arbitrary -> "arbitrary"
        | Netlist.Words ws ->
          "words " ^ String.concat " " (List.map string_of_int (Array.to_list ws))
      in
      line "memory %d %s %d %d %s" (Netlist.memory_id m) (Netlist.memory_name m)
        (Netlist.memory_addr_width m) (Netlist.memory_data_width m) init;
      for w = 0 to Netlist.num_write_ports m - 1 do
        let addr, data, enable = Netlist.write_port m w in
        line "wport %d %s %s : %s" (Netlist.memory_id m) (signal_to_string enable)
          (String.concat " " (List.map signal_to_string (Array.to_list addr)))
          (String.concat " " (List.map signal_to_string (Array.to_list data)))
      done;
      for r = 0 to Netlist.num_read_ports m - 1 do
        let addr, enable, out = Netlist.read_port m r in
        line "rport %d %s %s : %s" (Netlist.memory_id m) (signal_to_string enable)
          (String.concat " " (List.map signal_to_string (Array.to_list addr)))
          (String.concat " "
             (List.map (fun s -> string_of_int (Netlist.node_of s)) (Array.to_list out)))
      done)
    (Netlist.memories net);
  List.iter
    (fun l ->
      line "next %d %s" (Netlist.node_of l) (signal_to_string (Netlist.latch_next net l)))
    (Netlist.latches net);
  List.iter
    (fun (name, s) ->
      check_name name;
      line "property %s %s" name (signal_to_string s))
    (Netlist.properties net);
  List.iter
    (fun (name, s) ->
      check_name name;
      line "output %s %s" name (signal_to_string s))
    (Netlist.outputs net);
  Buffer.contents buf

let save net path =
  let out = open_out path in
  Fun.protect ~finally:(fun () -> close_out out) (fun () ->
      output_string out (to_string net))

(* {2 Loading} *)

type node_def =
  | Dinput of string
  | Dlatch of string * bool option
  | Dand of string * string

type port_def = { p_mem : int; p_enable : string; p_addr : string list; p_rhs : string list }

let of_string text =
  let nodes : (int * node_def) list ref = ref [] in
  let memories = ref [] in
  let wports = ref [] in
  let rports = ref [] in
  let nexts = ref [] in
  let properties = ref [] in
  let outputs = ref [] in
  let fail lineno fmt =
    Printf.ksprintf (fun s -> failwith (Printf.sprintf "emn line %d: %s" lineno s)) fmt
  in
  let parse_port lineno rest =
    match rest with
    | mem :: enable :: tl ->
      let rec split acc = function
        | ":" :: rhs -> (List.rev acc, rhs)
        | x :: tl -> split (x :: acc) tl
        | [] -> fail lineno "port line missing ':'"
      in
      let addr, rhs = split [] tl in
      { p_mem = int_of_string mem; p_enable = enable; p_addr = addr; p_rhs = rhs }
    | _ -> fail lineno "truncated port line"
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let lin =
        match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      match String.split_on_char ' ' (String.trim lin) |> List.filter (( <> ) "") with
      | [] -> ()
      | [ "emn"; "1" ] -> ()
      | "emn" :: _ -> fail lineno "unsupported format version"
      | "node" :: id :: "input" :: [ name ] ->
        nodes := (int_of_string id, Dinput name) :: !nodes
      | "node" :: id :: "latch" :: name :: [ init ] ->
        nodes := (int_of_string id, Dlatch (name, init_of_string lineno init)) :: !nodes
      | "node" :: id :: "and" :: a :: [ b ] ->
        nodes := (int_of_string id, Dand (a, b)) :: !nodes
      | "memory" :: id :: name :: aw :: dw :: init ->
        let init =
          match init with
          | [ "zeros" ] -> Netlist.Zeros
          | [ "arbitrary" ] -> Netlist.Arbitrary
          | "words" :: ws -> Netlist.Words (Array.of_list (List.map int_of_string ws))
          | _ -> fail lineno "bad memory init"
        in
        memories :=
          (int_of_string id, name, int_of_string aw, int_of_string dw, init) :: !memories
      | "wport" :: rest -> wports := parse_port lineno rest :: !wports
      | "rport" :: rest -> rports := parse_port lineno rest :: !rports
      | [ "next"; latch; s ] -> nexts := (int_of_string latch, s) :: !nexts
      | [ "property"; name; s ] -> properties := (name, s) :: !properties
      | [ "output"; name; s ] -> outputs := (name, s) :: !outputs
      | tok :: _ -> fail lineno "unknown directive %S" tok)
    lines;
  let net = Netlist.create () in
  (* Old node id -> new signal (positive phase). *)
  let map : (int, Netlist.signal) Hashtbl.t = Hashtbl.create 1024 in
  Hashtbl.replace map 0 Netlist.false_;
  let signal_of s =
    let compl = String.length s > 0 && s.[0] = '!' in
    let id = int_of_string (if compl then String.sub s 1 (String.length s - 1) else s) in
    match Hashtbl.find_opt map id with
    | Some ns -> if compl then Netlist.not_ ns else ns
    | None -> failwith (Printf.sprintf "emn: node %d used before definition" id)
  in
  (* Memories first (ids ascending), so read ports can attach. *)
  let mem_by_id = Hashtbl.create 4 in
  List.iter
    (fun (id, name, addr_width, data_width, init) ->
      let m = Netlist.add_memory net ~name ~addr_width ~data_width ~init in
      Hashtbl.replace mem_by_id id m)
    (List.sort compare (List.rev !memories));
  (* Nodes in id order; read ports are created when reached, in the order the
     rport lines declare their output nodes. *)
  let pending_rports = ref (List.rev !rports) in
  let rport_done = Hashtbl.create 8 in
  let defs = List.sort compare (List.rev !nodes) in
  let min_rport_id p =
    List.fold_left (fun acc s -> min acc (int_of_string s)) max_int p.p_rhs
  in
  let create_rport p =
    let m =
      match Hashtbl.find_opt mem_by_id p.p_mem with
      | Some m -> m
      | None -> failwith (Printf.sprintf "emn: rport of unknown memory %d" p.p_mem)
    in
    let addr = Array.of_list (List.map signal_of p.p_addr) in
    let enable = signal_of p.p_enable in
    let out = Netlist.add_read_port net m ~addr ~enable in
    List.iteri
      (fun bit s ->
        let id = int_of_string s in
        if bit < Array.length out then Hashtbl.replace map id out.(bit))
      p.p_rhs;
    Hashtbl.replace rport_done p ()
  in
  List.iter
    (fun (id, def) ->
      (* Create any read port whose outputs start before this node. *)
      List.iter
        (fun p ->
          if (not (Hashtbl.mem rport_done p)) && min_rport_id p < id then create_rport p)
        !pending_rports;
      pending_rports := List.filter (fun p -> not (Hashtbl.mem rport_done p)) !pending_rports;
      let s =
        match def with
        | Dinput name -> Netlist.input net name
        | Dlatch (name, init) -> Netlist.latch net ~init name
        | Dand (a, b) -> Netlist.and_ net (signal_of a) (signal_of b)
      in
      Hashtbl.replace map id s)
    defs;
  List.iter (fun p -> if not (Hashtbl.mem rport_done p) then create_rport p)
    !pending_rports;
  (* Write ports, next-states, properties, outputs. *)
  List.iter
    (fun p ->
      let m = Hashtbl.find mem_by_id p.p_mem in
      let addr = Array.of_list (List.map signal_of p.p_addr) in
      let data = Array.of_list (List.map signal_of p.p_rhs) in
      ignore (Netlist.add_write_port net m ~addr ~data ~enable:(signal_of p.p_enable)))
    (List.rev !wports);
  List.iter
    (fun (latch, s) ->
      match Hashtbl.find_opt map latch with
      | Some l -> Netlist.set_next net l (signal_of s)
      | None -> failwith (Printf.sprintf "emn: next of unknown latch %d" latch))
    (List.rev !nexts);
  List.iter (fun (name, s) -> Netlist.add_property net name (signal_of s))
    (List.rev !properties);
  List.iter (fun (name, s) -> Netlist.add_output net name (signal_of s)) (List.rev !outputs);
  net

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text
