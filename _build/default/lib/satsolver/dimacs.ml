type problem = { num_vars : int; clauses : Lit.t list list }

let parse_string s =
  let num_vars = ref 0 in
  let declared_clauses = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let lines = String.split_on_char '\n' s in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
        | [ "p"; "cnf"; nv; nc ] ->
          num_vars := int_of_string nv;
          declared_clauses := int_of_string nc
        | _ -> failwith (Printf.sprintf "dimacs: bad problem line %d" (lineno + 1))
      end
      else
        String.split_on_char ' ' line
        |> List.filter (fun t -> t <> "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | None -> failwith (Printf.sprintf "dimacs: bad token %S line %d" tok (lineno + 1))
               | Some 0 ->
                 clauses := List.rev !current :: !clauses;
                 current := []
               | Some d ->
                 num_vars := max !num_vars (abs d);
                 current := Lit.of_dimacs d :: !current))
    lines;
  if !current <> [] then clauses := List.rev !current :: !clauses;
  { num_vars = !num_vars; clauses = List.rev !clauses }

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string s

let to_string { num_vars; clauses } =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" num_vars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int (Lit.to_dimacs l) ^ " ")) clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let load_into solver { num_vars; clauses } =
  Solver.ensure_vars solver num_vars;
  List.iter (Solver.add_clause solver) clauses
