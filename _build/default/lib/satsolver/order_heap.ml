type t = {
  activity : int -> float;
  heap : int Vec.t;
  mutable index : int array; (* var -> position in heap, -1 if absent *)
}

let create ~activity =
  { activity; heap = Vec.create ~dummy:(-1) (); index = Array.make 64 (-1) }

let ensure t v =
  let n = Array.length t.index in
  if v >= n then begin
    let index = Array.make (max (2 * n) (v + 1)) (-1) in
    Array.blit t.index 0 index 0 n;
    t.index <- index
  end

let in_heap t v = v < Array.length t.index && t.index.(v) >= 0
let is_empty t = Vec.is_empty t.heap

let swap t i j =
  let vi = Vec.get t.heap i and vj = Vec.get t.heap j in
  Vec.set t.heap i vj;
  Vec.set t.heap j vi;
  t.index.(vi) <- j;
  t.index.(vj) <- i

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.activity (Vec.get t.heap i) > t.activity (Vec.get t.heap parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let n = Vec.size t.heap in
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let best = ref i in
  if left < n && t.activity (Vec.get t.heap left) > t.activity (Vec.get t.heap !best)
  then best := left;
  if right < n && t.activity (Vec.get t.heap right) > t.activity (Vec.get t.heap !best)
  then best := right;
  if !best <> i then begin
    swap t i !best;
    sift_down t !best
  end

let insert t v =
  ensure t v;
  if t.index.(v) < 0 then begin
    Vec.push t.heap v;
    t.index.(v) <- Vec.size t.heap - 1;
    sift_up t (Vec.size t.heap - 1)
  end

let remove_max t =
  if is_empty t then raise Not_found;
  let v = Vec.get t.heap 0 in
  let n = Vec.size t.heap in
  swap t 0 (n - 1);
  ignore (Vec.pop t.heap);
  t.index.(v) <- -1;
  if not (is_empty t) then sift_down t 0;
  v

let update t v =
  if in_heap t v then begin
    sift_up t t.index.(v);
    sift_down t t.index.(v)
  end

let rebuild t vars =
  while not (is_empty t) do
    ignore (remove_max t)
  done;
  List.iter (insert t) vars
