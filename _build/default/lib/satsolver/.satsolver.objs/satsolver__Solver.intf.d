lib/satsolver/solver.mli: Format Lit
