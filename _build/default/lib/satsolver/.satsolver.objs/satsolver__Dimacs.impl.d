lib/satsolver/dimacs.ml: Buffer List Lit Printf Solver String
