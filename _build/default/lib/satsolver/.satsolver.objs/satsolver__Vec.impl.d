lib/satsolver/vec.ml: Array List
