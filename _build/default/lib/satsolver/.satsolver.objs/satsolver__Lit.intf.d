lib/satsolver/lit.mli: Format
