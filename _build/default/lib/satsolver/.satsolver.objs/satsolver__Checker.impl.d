lib/satsolver/checker.ml: Array Hashtbl List Lit Option Queue Vec
