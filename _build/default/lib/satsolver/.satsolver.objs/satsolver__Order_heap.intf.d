lib/satsolver/order_heap.mli:
