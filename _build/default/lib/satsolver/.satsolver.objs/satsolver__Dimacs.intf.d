lib/satsolver/dimacs.mli: Lit Solver
