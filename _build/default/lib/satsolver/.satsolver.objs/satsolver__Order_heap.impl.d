lib/satsolver/order_heap.ml: Array List Vec
