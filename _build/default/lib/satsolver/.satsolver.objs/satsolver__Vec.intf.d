lib/satsolver/vec.mli:
