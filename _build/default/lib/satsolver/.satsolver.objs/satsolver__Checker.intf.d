lib/satsolver/checker.mli: Lit
