lib/satsolver/lit.ml: Format
