lib/satsolver/solver.ml: Array Format Hashtbl List Lit Order_heap Unix Vec
