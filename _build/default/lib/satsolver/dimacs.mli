(** DIMACS CNF reading and writing.

    Used by the CLI for standalone solving and by the test-suite to exchange
    problems with reference tooling. *)

type problem = { num_vars : int; clauses : Lit.t list list }

val parse_string : string -> problem
(** Raises [Failure] with a location message on malformed input. *)

val parse_file : string -> problem

val to_string : problem -> string

val load_into : Solver.t -> problem -> unit
(** Declare the variables and add every clause to the solver. *)
