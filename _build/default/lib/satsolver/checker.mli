(** Independent validation of refutations, in the spirit of the checker the
    paper relies on for [SAT_Get_Refutation] (Zhang & Malik, DATE'03 — its
    reference [20]).

    The solver can log every clause it learns ({!Solver.set_proof_logging});
    a refutation is then validated by checking each logged clause for the
    {e reverse unit propagation} property against the original clauses and
    the previously validated ones: asserting the negation of the clause and
    running unit propagation must yield a conflict.  A final propagation
    pass over everything must conflict as well, establishing
    unsatisfiability without trusting any solver internals — this module
    shares no code with the solver's propagation engine. *)

val verify :
  num_vars:int -> original:Lit.t list list -> derivation:Lit.t list list -> bool
(** [true] iff every derived clause is RUP with respect to its predecessors
    and the combined set is unit-refutable. *)

val clause_is_rup : num_vars:int -> Lit.t list list -> Lit.t list -> bool
(** One step: is the clause implied-by-unit-propagation from the set? *)
