(* A deliberately simple propagation engine: occurrence lists plus a
   scan-until-fixpoint loop.  Performance is secondary to independence from
   the solver implementation. *)

type cls = { lits : int array }

type state = {
  nvars : int;
  clauses : cls Vec.t;
  occurs : (int, int list) Hashtbl.t; (* literal -> clause indices *)
  assign : int array; (* var -> -1 undef / 0 false / 1 true *)
}

let make num_vars =
  {
    nvars = num_vars;
    clauses = Vec.create ~dummy:{ lits = [||] } ();
    occurs = Hashtbl.create 1024;
    assign = Array.make (max num_vars 1) (-1);
  }

let add_clause st lits =
  (* Duplicate literals would defeat unit detection. *)
  let lits = List.sort_uniq compare lits in
  let idx = Vec.size st.clauses in
  Vec.push st.clauses { lits = Array.of_list lits };
  List.iter
    (fun l ->
      let old = Option.value (Hashtbl.find_opt st.occurs l) ~default:[] in
      Hashtbl.replace st.occurs l (idx :: old))
    lits

let value st l =
  let v = st.assign.(Lit.var l) in
  if v < 0 then -1 else if Lit.sign l then v else 1 - v

(* Propagate from the given seed assignments; returns [true] on conflict.
   All assignments are recorded in [trail] for undoing. *)
let propagate st seeds trail =
  let conflict = ref false in
  let queue = Queue.create () in
  let enqueue l =
    match value st l with
    | 0 -> conflict := true
    | 1 -> ()
    | _ ->
      st.assign.(Lit.var l) <- (if Lit.sign l then 1 else 0);
      trail := Lit.var l :: !trail;
      Queue.push l queue
  in
  List.iter enqueue seeds;
  (* Initial scan: pre-existing empty or unit clauses. *)
  Vec.iter
    (fun c ->
      if not !conflict then begin
        let satisfied = ref false in
        let unassigned = ref [] in
        Array.iter
          (fun l ->
            match value st l with
            | 1 -> satisfied := true
            | 0 -> ()
            | _ -> unassigned := l :: !unassigned)
          c.lits;
        if not !satisfied then
          match !unassigned with
          | [] -> conflict := true
          | [ unit_lit ] -> enqueue unit_lit
          | _ :: _ :: _ -> ()
      end)
    st.clauses;
  while (not !conflict) && not (Queue.is_empty queue) do
    let p = Queue.pop queue in
    (* Clauses containing ~p may have become unit or empty. *)
    let affected = Option.value (Hashtbl.find_opt st.occurs (Lit.negate p)) ~default:[] in
    List.iter
      (fun idx ->
        if not !conflict then begin
          let c = Vec.get st.clauses idx in
          let satisfied = ref false in
          let unassigned = ref [] in
          Array.iter
            (fun l ->
              match value st l with
              | 1 -> satisfied := true
              | 0 -> ()
              | _ -> unassigned := l :: !unassigned)
            c.lits;
          if not !satisfied then begin
            match !unassigned with
            | [] -> conflict := true
            | [ unit_lit ] -> enqueue unit_lit
            | _ :: _ :: _ -> ()
          end
        end)
      affected
  done;
  !conflict

let undo st trail = List.iter (fun v -> st.assign.(v) <- -1) trail

(* Is [clause] RUP w.r.t. the current clause set?  Assert its negation and
   propagate; a conflict certifies the clause. *)
let rup st clause =
  let trail = ref [] in
  let conflict = propagate st (List.map Lit.negate clause) trail in
  undo st !trail;
  conflict

let clause_is_rup ~num_vars set clause =
  let st = make num_vars in
  List.iter (add_clause st) set;
  rup st clause

let verify ~num_vars ~original ~derivation =
  let st = make num_vars in
  List.iter (add_clause st) original;
  let ok =
    List.for_all
      (fun clause ->
        let step_ok = rup st clause in
        if step_ok then add_clause st clause;
        step_ok)
      derivation
  in
  (* Final step: the accumulated set must be unit-refutable. *)
  ok
  &&
  let trail = ref [] in
  let conflict = propagate st [] trail in
  undo st !trail;
  conflict
