type t = int

let of_var v sign = if sign then 2 * v else (2 * v) + 1
let var l = l lsr 1
let sign l = l land 1 = 0
let negate l = l lxor 1
let pos v = 2 * v
let neg v = (2 * v) + 1
let to_dimacs l = if sign l then var l + 1 else -(var l + 1)

let of_dimacs d =
  if d = 0 then invalid_arg "Lit.of_dimacs: zero"
  else if d > 0 then pos (d - 1)
  else neg (-d - 1)

let pp ppf l = Format.fprintf ppf "%d" (to_dimacs l)
