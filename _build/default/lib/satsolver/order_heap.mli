(** Max-heap over variable indices keyed by an external activity array.

    Used for VSIDS decision ordering: the heap stores variable indices and
    compares them through the solver's activity table, which the solver
    mutates; {!decrease_key}/{!increase_key} restore the heap property after
    such mutations. *)

type t

val create : activity:(int -> float) -> t
(** [activity] reads the current score of a variable; the heap never caches
    scores. *)

val in_heap : t -> int -> bool
val insert : t -> int -> unit
(** No-op if the variable is already in the heap. *)

val remove_max : t -> int
(** Raises [Not_found] when empty. *)

val is_empty : t -> bool
val update : t -> int -> unit
(** Re-establish heap order around a variable whose activity changed.  No-op
    if the variable is not in the heap. *)

val rebuild : t -> int list -> unit
(** Clear and re-insert the given variables. *)
