(** Propositional literals encoded as non-negative integers.

    A variable [v >= 0] yields two literals: the positive literal [2v] and
    the negative literal [2v+1].  This packing keeps literal operations
    branch-free and lets watch lists be indexed directly by literal. *)

type t = int

val of_var : int -> bool -> t
(** [of_var v sign] is the literal over variable [v]; [sign = true] gives the
    positive literal. *)

val var : t -> int
(** Variable index of a literal. *)

val sign : t -> bool
(** [true] iff the literal is positive. *)

val negate : t -> t
(** Complement literal. *)

val pos : int -> t
(** [pos v] is the positive literal of variable [v]. *)

val neg : int -> t
(** [neg v] is the negative literal of variable [v]. *)

val to_dimacs : t -> int
(** 1-based signed integer representation ([v+1] or [-(v+1)]). *)

val of_dimacs : int -> t
(** Inverse of {!to_dimacs}.  Raises [Invalid_argument] on [0]. *)

val pp : Format.formatter -> t -> unit
