(** Proof-based abstraction combined with EMM (§4.3 of the paper).

    A discovery run executes BMC with latch-reason collection: after every
    unsatisfiable falsification query, the solver's refutation is retraced
    and the latches whose transition-link clauses participate are added to
    the reason set [LR].  Once [LR] is stable for a given number of depths,
    an abstract model is formed: latches outside [LR] become pseudo-primary
    inputs, and memory modules none of whose control-logic latches appear in
    [LR] are abstracted away entirely — their EMM constraints are simply not
    generated (or, for the explicit baseline, their bit-latches are freed).

    Properties proved on the abstract model hold on the concrete design up to
    the analysed depth; the abstraction is also sound for the termination
    (induction) checks on the reduced state space, which is how Table 2 of
    the paper obtains its proofs. *)

type abstraction = {
  kept_latches : Netlist.signal list;  (** the stable latch reasons *)
  free_latches : Netlist.signal list;
  modeled_memories : Netlist.memory list;
  abstracted_memories : Netlist.memory list;
  discovery_depth : int;  (** depth at which the reason set stabilised *)
  discovery_time : float;  (** seconds spent in the discovery run *)
}

val memory_control_latches : Netlist.t -> Netlist.memory -> Netlist.signal list
(** Latches in the sequential cone of the memory's interface signals. *)

val discover :
  ?max_depth:int ->
  ?stability:int ->
  ?deadline:float ->
  ?use_emm:bool ->
  ?within:abstraction ->
  Netlist.t ->
  property:string ->
  (abstraction, Bmc.Engine.verdict) Either.t
(** Run the discovery phase.  [stability] (default 10, as in the paper's
    experiments) is the number of depths the reason set must stay unchanged.
    [use_emm] (default true) adds EMM constraints during discovery; pass
    [false] for an explicitly expanded model.  Returns [Right verdict] if the
    run concluded (counterexample/proof/timeout) before stabilising. *)

val is_memory_modeled : Netlist.t -> Netlist.signal list -> Netlist.memory -> bool
(** Does the latch-reason set intersect the memory's control logic? *)

val iterate :
  ?rounds:int ->
  ?max_depth:int ->
  ?stability:int ->
  ?deadline:float ->
  Netlist.t ->
  property:string ->
  (abstraction, Bmc.Engine.verdict) Either.t
(** Iterative abstraction [Gupta et al., ICCAD'03], as invoked in §2.2 of the
    paper: re-run reason discovery on the already-abstracted model until the
    reason set stops shrinking (or [rounds] is exhausted).  Each round can
    only remove latches, so the sequence converges. *)

val check_with_abstraction :
  ?config:Bmc.Engine.config ->
  Netlist.t ->
  abstraction ->
  property:string ->
  Bmc.Engine.result * Emm.counts
(** Verify the property on the abstract model: latches outside the reason set
    are free, and only the still-modeled memories receive EMM constraints. *)

val pp_abstraction : Netlist.t -> Format.formatter -> abstraction -> unit
