type config = { addr_width : int; first_value : int; num_properties : int }

let default_config = { addr_width = 4; first_value = 18; num_properties = 216 }

let max_output = (255 + (2 * 255) + 0x7f) / 4 (* = 223 *)

let property_names cfg =
  List.init cfg.num_properties (fun i -> Printf.sprintf "P%d" (cfg.first_value + i))

let reachable_values cfg =
  List.filter
    (fun v -> v <= max_output)
    (List.init cfg.num_properties (fun i -> cfg.first_value + i))

let build cfg =
  let ctx = Hdl.create () in
  let aw = cfg.addr_width in
  (* Column counter sweeping the line buffers. *)
  let col = Hdl.reg ctx "col" ~width:aw in
  Hdl.connect ctx col (Hdl.incr ctx col);
  let pix = Hdl.input ctx "pix" ~width:8 in
  (* Line buffers: row N-1 and row N-2 at the current column.  Reads observe
     the previous row's value before this cycle's write lands. *)
  let line1 = Hdl.memory ctx ~name:"line1" ~addr_width:aw ~data_width:8 ~init:Netlist.Zeros in
  let line2 = Hdl.memory ctx ~name:"line2" ~addr_width:aw ~data_width:8 ~init:Netlist.Zeros in
  let above = Hdl.read_port ctx line1 ~addr:col ~enable:Netlist.true_ in
  let above2 = Hdl.read_port ctx line2 ~addr:col ~enable:Netlist.true_ in
  Hdl.write_port ctx line1 ~addr:col ~data:pix ~enable:Netlist.true_;
  Hdl.write_port ctx line2 ~addr:col ~data:above ~enable:Netlist.true_;
  (* Vertical low-pass: (pix + 2*above + (above2 & 0x7f)) / 4. *)
  let w = 10 in
  let sum =
    Hdl.add ctx
      (Hdl.uresize pix ~width:w)
      (Hdl.add ctx
         (Hdl.shift_left_const (Hdl.uresize above ~width:w) 1)
         (Hdl.uresize (Hdl.select above2 ~hi:6 ~lo:0) ~width:w))
  in
  let out = Hdl.select sum ~hi:(w - 1) ~lo:2 in
  let out_reg = Hdl.reg ctx "out" ~width:8 in
  Hdl.connect ctx out_reg out;
  Hdl.output ctx "filtered" out_reg;
  (* One reachability property per probed output value. *)
  List.iteri
    (fun i name ->
      let v = cfg.first_value + i in
      Hdl.assert_always ctx name (Hdl.neq ctx out_reg (Hdl.const ~width:8 v)))
    (property_names cfg);
  Hdl.netlist ctx
