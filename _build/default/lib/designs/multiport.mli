(** Synthetic equivalent of the paper's "Industry Design II": a lookup engine
    with one embedded memory serving one write port and three read ports.

    The paper's design (2400 latches, AW=12, DW=32, 1W/3R, memory reset to
    0) had 8 reachability properties.  Abstracting the memory completely
    produced spurious witnesses at depth 7; with EMM no witness exists up to
    depth 200; and the engineers then noticed the write-enable path never
    delivers data — the invariant [G (WE = 0 \/ WD = 0)] holds, provable by
    backward induction at depth 2 — after which the memory could be replaced
    by constant-zero read data and every property proved by induction.

    This reconstruction plants the same bug: the write-data register is
    masked by a flag that only fires in an unreachable mode-counter state, so
    the memory (reset to 0) never changes, the lookup patterns are never hit,
    and the same verification narrative unfolds:

    - ["hit0" .. "hit7"]: the pipelined pattern-match outputs never rise
      (the paper's 8 reachability properties, all unreachable);
    - ["mem_quiet"]: [WE = 0 \/ WD = 0], backward-inductive at depth 2.

    [build ~rd_tied_zero:true] applies the invariant the way the paper did:
    the memory is removed and read data tied to zero, which makes the 8
    properties inductively provable on a memory-free model. *)

type config = {
  addr_width : int;
  data_width : int;
  pipeline_depth : int;  (** depth at which spurious witnesses appear *)
}

val default_config : config
(** [addr_width = 6], [data_width = 8], [pipeline_depth = 7]. *)

val patterns : int array
(** The 8 lookup patterns, all non-zero. *)

val build : ?rd_tied_zero:bool -> config -> Netlist.t
val property_names : string list
