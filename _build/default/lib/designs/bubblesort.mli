(** A bubble-sort machine — the second "software program" case study.

    Like the quicksort machine it sorts the first [n] elements of an
    embedded memory with arbitrary initial contents, but with a simple
    doubly-nested loop and no recursion stack: one memory, one read and one
    write port.  Useful as a contrast workload: its proof diameter grows
    quadratically with [n] where quicksort's grows roughly linearly.

    Properties:
    - ["sorted"]: the final check reads elements 0 and 1; the first cannot
      exceed the second;
    - ["bounds"]: whenever the inner loop compares, [j < i <= n-1] — a pure
      control property, independent of the array contents.

    [build ~buggy:true] swaps only when {e strictly less} (inverted
    comparison), so the array ends up reverse-sorted and ["sorted"] fails. *)

type config = { n : int; addr_width : int; data_width : int }

val default_config : n:int -> config

val build : ?buggy:bool -> config -> Netlist.t
