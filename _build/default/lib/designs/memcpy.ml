type config = { n : int; addr_width : int; data_width : int }

let bits_for n =
  let rec go w = if 1 lsl w > n then w else go (w + 1) in
  go 1

let default_config ~n = { n; addr_width = bits_for n; data_width = 8 }

let build ?(buggy = false) cfg =
  if cfg.n < 1 then invalid_arg "Memcpy.build: need n >= 1";
  if cfg.n >= 1 lsl cfg.addr_width then invalid_arg "Memcpy.build: n too large";
  let ctx = Hdl.create () in
  let net = Hdl.netlist ctx in
  let aw = cfg.addr_width and dw = cfg.data_width in
  let src = Hdl.memory ctx ~name:"src" ~addr_width:aw ~data_width:dw ~init:Netlist.Arbitrary in
  let dst = Hdl.memory ctx ~name:"dst" ~addr_width:aw ~data_width:dw ~init:Netlist.Zeros in
  let fsm = Hdl.Fsm.create ctx "state" ~states:[ "COPY"; "VERIFY"; "HALT" ] in
  let is = Hdl.Fsm.is fsm in
  let idx = Hdl.reg ctx "idx" ~width:aw in
  (* The planted bug stops one word short. *)
  let copy_limit = if buggy then cfg.n - 1 else cfg.n in
  let copy_done = Hdl.eq_const ctx idx (copy_limit - 1) in
  let verify_done = Hdl.eq_const ctx idx (cfg.n - 1) in
  let src_rd = Hdl.read_port ctx src ~addr:idx ~enable:(Netlist.not_ (is "HALT")) in
  Hdl.write_port ctx dst ~addr:idx ~data:src_rd ~enable:(is "COPY");
  let dst_rd = Hdl.read_port ctx dst ~addr:idx ~enable:(is "VERIFY") in
  let next_idx = Hdl.incr ctx idx in
  let and_b = Netlist.and_ net in
  Hdl.connect ctx idx
    (Hdl.pmux ctx
       [
         (and_b (is "COPY") copy_done, Hdl.zero ~width:aw);
         (is "COPY", next_idx);
         (is "VERIFY", next_idx);
       ]
       ~default:idx);
  Hdl.Fsm.finalize fsm
    [
      (and_b (is "COPY") copy_done, "VERIFY");
      (is "COPY", "COPY");
      (and_b (is "VERIFY") verify_done, "HALT");
      (is "VERIFY", "VERIFY");
      (is "HALT", "HALT");
    ];
  Hdl.assert_always ctx "copied"
    (Netlist.implies net (is "VERIFY") (Hdl.eq ctx src_rd dst_rd));
  Hdl.output ctx "idx" idx;
  Hdl.output_bit ctx "halted" (is "HALT");
  net
