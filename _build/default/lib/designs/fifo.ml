type config = { addr_width : int; data_width : int }

let default_config = { addr_width = 2; data_width = 4 }

let build ?(buggy = false) cfg =
  let ctx = Hdl.create () in
  let net = Hdl.netlist ctx in
  let aw = cfg.addr_width and dw = cfg.data_width in
  let capacity = 1 lsl aw in
  let and_b = Netlist.and_ net in
  let push_req = Hdl.input_bit ctx "push" in
  let pop_req = Hdl.input_bit ctx "pop" in
  let data_in = Hdl.input ctx "data_in" ~width:dw in
  let watch = Hdl.input_bit ctx "watch" in
  let wr_ptr = Hdl.reg ctx "wr_ptr" ~width:aw in
  let rd_ptr = Hdl.reg ctx "rd_ptr" ~width:aw in
  let count = Hdl.reg ctx "count" ~width:(aw + 1) in
  let full = Hdl.eq_const ctx count capacity in
  let empty = Hdl.eq_const ctx count 0 in
  (* The planted bug: a full FIFO accepts the push anyway and overwrites the
     oldest live entry. *)
  let push = if buggy then push_req else and_b push_req (Netlist.not_ full) in
  let pop = and_b pop_req (Netlist.not_ empty) in
  let mem = Hdl.memory ctx ~name:"fifo_ram" ~addr_width:aw ~data_width:dw ~init:Netlist.Zeros in
  Hdl.write_port ctx mem ~addr:wr_ptr ~data:data_in ~enable:push;
  let rd = Hdl.read_port ctx mem ~addr:rd_ptr ~enable:pop in
  Hdl.connect ctx wr_ptr (Hdl.mux2 ctx push (Hdl.incr ctx wr_ptr) wr_ptr);
  Hdl.connect ctx rd_ptr (Hdl.mux2 ctx pop (Hdl.incr ctx rd_ptr) rd_ptr);
  let count_up = and_b push (Netlist.not_ pop) in
  let count_down = and_b pop (Netlist.not_ push) in
  Hdl.connect ctx count
    (Hdl.pmux ctx
       [ (count_up, Hdl.incr ctx count); (count_down, Hdl.decr ctx count) ]
       ~default:count);
  (* Scoreboard: watch one pushed word until its slot pops. *)
  let armed = Hdl.reg_bit ctx "armed" in
  let shadow = Hdl.reg ctx "shadow" ~width:dw in
  let slot = Hdl.reg ctx "slot" ~width:aw in
  let arm = and_b watch (and_b push (Netlist.not_ armed)) in
  let slot_pops = and_b pop (and_b armed (Hdl.eq ctx rd_ptr slot)) in
  Hdl.connect_bit ctx armed
    (Netlist.or_ net arm (and_b armed (Netlist.not_ slot_pops)));
  Hdl.connect ctx shadow (Hdl.mux2 ctx arm data_in shadow);
  Hdl.connect ctx slot (Hdl.mux2 ctx arm wr_ptr slot);
  Hdl.assert_always ctx "fifo_data"
    (Netlist.implies net slot_pops (Hdl.eq ctx rd shadow));
  Hdl.assert_always ctx "fifo_count"
    (Hdl.le ctx count (Hdl.const ~width:(aw + 1) capacity));
  Hdl.output ctx "read_data" rd;
  Hdl.output_bit ctx "full" full;
  Hdl.output_bit ctx "empty" empty;
  net
