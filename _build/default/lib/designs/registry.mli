(** Catalog of built-in designs, keyed by name — used by the [emmver] CLI and
    the benchmark harness. *)

type entry = {
  name : string;
  description : string;
  build : unit -> Netlist.t;
}

val all : unit -> entry list
val find : string -> entry
(** Raises [Not_found]. *)

val names : unit -> string list
