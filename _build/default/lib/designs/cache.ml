type config = { tag_width : int; index_width : int; data_width : int }

let default_config = { tag_width = 2; index_width = 2; data_width = 4 }

let build ?(buggy = false) cfg =
  let ctx = Hdl.create () in
  let net = Hdl.netlist ctx in
  let tw = cfg.tag_width and iw = cfg.index_width and dw = cfg.data_width in
  let aw = tw + iw in
  let and_b = Netlist.and_ net in
  (* CPU-side request interface. *)
  let req_valid = Hdl.input_bit ctx "req_valid" in
  let req_write = Hdl.input_bit ctx "req_write" in
  let req_addr = Hdl.input ctx "req_addr" ~width:aw in
  let req_wdata = Hdl.input ctx "req_wdata" ~width:dw in
  let watch = Hdl.input_bit ctx "watch" in
  (* The three embedded memories. *)
  let tags =
    Hdl.memory ctx ~name:"tags" ~addr_width:iw ~data_width:(tw + 1) ~init:Netlist.Zeros
  in
  let data = Hdl.memory ctx ~name:"data" ~addr_width:iw ~data_width:dw ~init:Netlist.Zeros in
  let backing =
    Hdl.memory ctx ~name:"backing" ~addr_width:aw ~data_width:dw ~init:Netlist.Arbitrary
  in
  let fsm =
    Hdl.Fsm.create ctx "state"
      ~states:[ "IDLE"; "LOOKUP"; "WRITE"; "FILL_READ"; "FILL_WRITE"; "RESPOND" ]
  in
  let is = Hdl.Fsm.is fsm in
  (* Latched request. *)
  let addr = Hdl.reg ctx "addr" ~width:aw in
  let wdata = Hdl.reg ctx "wdata" ~width:dw in
  let is_write = Hdl.reg_bit ctx "is_write" in
  let accept = and_b (is "IDLE") req_valid in
  Hdl.connect ctx addr (Hdl.mux2 ctx accept req_addr addr);
  Hdl.connect ctx wdata (Hdl.mux2 ctx accept req_wdata wdata);
  Hdl.connect_bit ctx is_write (Netlist.mux net accept req_write is_write);
  let index = Hdl.select addr ~hi:(iw - 1) ~lo:0 in
  let tag = Hdl.select addr ~hi:(aw - 1) ~lo:iw in

  (* Tag store: read during LOOKUP, written on fill. *)
  let tag_rd = Hdl.read_port ctx tags ~addr:index ~enable:(is "LOOKUP") in
  let line_valid = Hdl.bit_of tag_rd tw in
  let line_tag = Hdl.select tag_rd ~hi:(tw - 1) ~lo:0 in
  let hit = and_b line_valid (Hdl.eq ctx line_tag tag) in
  let hit_reg = Hdl.reg_bit ctx "hit" in
  Hdl.connect_bit ctx hit_reg (Netlist.mux net (is "LOOKUP") hit hit_reg);
  Hdl.write_port ctx tags ~addr:index
    ~data:(Hdl.concat tag (Array.make 1 Netlist.true_))
    ~enable:(is "FILL_WRITE");

  (* Data store: read during LOOKUP; written on fill and (unless the planted
     bug is enabled) on write hits. *)
  let data_rd = Hdl.read_port ctx data ~addr:index ~enable:(is "LOOKUP") in
  let fill_reg = Hdl.reg ctx "fill" ~width:dw in
  let write_hit = and_b (is "WRITE") hit_reg in
  let data_we =
    if buggy then is "FILL_WRITE" else Netlist.or_ net (is "FILL_WRITE") write_hit
  in
  Hdl.write_port ctx data ~addr:index
    ~data:(Hdl.mux2 ctx (is "FILL_WRITE") fill_reg wdata)
    ~enable:data_we;

  (* Backing memory: fills read it, writes go through. *)
  let backing_rd = Hdl.read_port ctx backing ~addr ~enable:(is "FILL_READ") in
  Hdl.connect ctx fill_reg (Hdl.mux2 ctx (is "FILL_READ") backing_rd fill_reg);
  Hdl.write_port ctx backing ~addr ~data:wdata ~enable:(is "WRITE");

  (* Response register: hit data at LOOKUP, filled data otherwise. *)
  let resp = Hdl.reg ctx "resp" ~width:dw in
  Hdl.connect ctx resp
    (Hdl.pmux ctx
       [ (and_b (is "LOOKUP") hit, data_rd); (is "FILL_READ", backing_rd) ]
       ~default:resp);

  Hdl.Fsm.finalize fsm
    [
      (accept, "LOOKUP");
      (is "IDLE", "IDLE");
      (and_b (is "LOOKUP") is_write, "WRITE");
      (and_b (is "LOOKUP") hit, "RESPOND");
      (is "LOOKUP", "FILL_READ");
      (is "WRITE", "IDLE");
      (is "FILL_READ", "FILL_WRITE");
      (is "FILL_WRITE", "RESPOND");
      (is "RESPOND", "IDLE");
    ];

  (* Scoreboard: watch one written word; any later response for that address
     must return it (unless overwritten, which re-arms with the new data). *)
  let armed = Hdl.reg_bit ctx "armed" in
  let shadow = Hdl.reg ctx "shadow" ~width:dw in
  let slot = Hdl.reg ctx "slot" ~width:aw in
  let arm = and_b (is "WRITE") (and_b watch (Netlist.not_ armed)) in
  let rewrite = and_b (is "WRITE") (and_b armed (Hdl.eq ctx addr slot)) in
  Hdl.connect_bit ctx armed (Netlist.or_ net arm armed);
  Hdl.connect ctx shadow
    (Hdl.mux2 ctx (Netlist.or_ net arm rewrite) wdata shadow);
  Hdl.connect ctx slot (Hdl.mux2 ctx arm addr slot);
  let watched_response =
    and_b (is "RESPOND")
      (and_b armed (and_b (Hdl.eq ctx addr slot) (Netlist.not_ is_write)))
  in
  Hdl.assert_always ctx "coherent"
    (Netlist.implies net watched_response (Hdl.eq ctx resp shadow));
  Hdl.assert_always ctx "fill_on_miss"
    (Netlist.implies net (is "FILL_WRITE") (Netlist.not_ hit_reg));
  Hdl.output ctx "resp" resp;
  Hdl.output_bit ctx "responding" (is "RESPOND");
  net
