(** Synthetic equivalent of the paper's "Industry Design I": a low-pass
    image filter with two embedded line-buffer memories.

    The paper's design had 756 latches, two 1R1W memories (AW=10, DW=8,
    reset to 0) and 216 reachability properties, of which 206 had witnesses
    (max depth 51) and 10 were proved by induction.  This reconstruction
    keeps the structure: a pixel stream enters, two line buffers provide the
    samples one and two rows above, and the filter output is

    {v out = (pix + 2*above + (above2 & 0x7f)) >> 2 v}

    whose range is [0 .. 223].  The generated reachability properties are
    [Pv: out <> v] for [v = first_value .. first_value+num_properties-1];
    with the defaults (18, 216) exactly 206 values are reachable (witnesses
    exist) and 10 are out of range (proved by induction), matching the
    paper's split. *)

type config = {
  addr_width : int;  (** line-buffer depth = 2^addr_width pixels *)
  first_value : int;
  num_properties : int;
}

val default_config : config
(** [addr_width = 4], [first_value = 18], [num_properties = 216]. *)

val build : config -> Netlist.t
val property_names : config -> string list
val reachable_values : config -> int list
(** The subset of checked values the filter can actually produce. *)
