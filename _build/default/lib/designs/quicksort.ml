type config = {
  n : int;
  addr_width : int;
  data_width : int;
  stack_addr_width : int;
}

let bits_for n =
  let rec go w = if 1 lsl w > n then w else go (w + 1) in
  go 1

let default_config ~n =
  let addr_width = bits_for n in
  { n; addr_width; data_width = 8; stack_addr_width = addr_width + 1 }

let state_names =
  [
    "INIT_PUSH"; "POP"; "CHECK"; "PIVOT"; "PART"; "SWAP_I"; "SWAP_J"; "FIN_I";
    "FIN_HI"; "PUSH_L"; "PUSH_R"; "CHECK0"; "CHECK1"; "HALT";
  ]

let build ?(buggy = false) cfg =
  if cfg.n < 2 then invalid_arg "Quicksort.build: need n >= 2";
  if cfg.n >= 1 lsl cfg.addr_width then invalid_arg "Quicksort.build: n too large";
  let ctx = Hdl.create () in
  let net = Hdl.netlist ctx in
  let aw = cfg.addr_width and dw = cfg.data_width and saw = cfg.stack_addr_width in
  let sdw = 2 * aw in
  (* Both memories start with arbitrary contents: sorting must work on any
     array, and the stack discipline must never read unwritten garbage. *)
  let arr = Hdl.memory ctx ~name:"arr" ~addr_width:aw ~data_width:dw ~init:Netlist.Arbitrary in
  let stack =
    Hdl.memory ctx ~name:"stack" ~addr_width:saw ~data_width:sdw ~init:Netlist.Arbitrary
  in
  let fsm = Hdl.Fsm.create ctx "state" ~states:state_names in
  let is = Hdl.Fsm.is fsm in
  let lo = Hdl.reg ctx "lo" ~width:aw in
  let hi = Hdl.reg ctx "hi" ~width:aw in
  let idx_i = Hdl.reg ctx "i" ~width:aw in
  let idx_j = Hdl.reg ctx "j" ~width:aw in
  let pivot = Hdl.reg ctx "pivot" ~width:dw in
  let ti = Hdl.reg ctx "ti" ~width:dw in
  let tj = Hdl.reg ctx "tj" ~width:dw in
  let sp = Hdl.reg ctx "sp" ~width:saw in
  let e0 = Hdl.reg ctx "e0" ~width:dw in
  let or_b = Netlist.or_ net and and_b = Netlist.and_ net in

  (* Array read port: address selected by state. *)
  let a_zero = Hdl.zero ~width:aw and a_one = Hdl.const ~width:aw 1 in
  let arr_raddr =
    Hdl.pmux ctx
      [
        (is "PIVOT", hi);
        (is "PART", idx_j);
        (is "SWAP_I", idx_i);
        (is "FIN_I", idx_i);
        (is "CHECK0", a_zero);
        (is "CHECK1", a_one);
      ]
      ~default:a_zero
  in
  let arr_re =
    Hdl.reduce_or ctx
      [| is "PIVOT"; is "PART"; is "SWAP_I"; is "FIN_I"; is "CHECK0"; is "CHECK1" |]
  in
  let arr_rd = Hdl.read_port ctx arr ~addr:arr_raddr ~enable:arr_re in

  (* Array write port. *)
  let arr_waddr =
    Hdl.pmux ctx
      [ (is "SWAP_I", idx_i); (is "SWAP_J", idx_j); (is "FIN_I", idx_i) ]
      ~default:hi (* FIN_HI *)
  in
  let arr_wdata =
    Hdl.pmux ctx
      [ (is "SWAP_I", tj); (is "SWAP_J", ti); (is "FIN_I", pivot) ]
      ~default:ti (* FIN_HI *)
  in
  let arr_we =
    Hdl.reduce_or ctx [| is "SWAP_I"; is "SWAP_J"; is "FIN_I"; is "FIN_HI" |]
  in
  Hdl.write_port ctx arr ~addr:arr_waddr ~data:arr_wdata ~enable:arr_we;

  (* Stack ports.  Reads happen on POP (sp > 0); writes push bounds pairs. *)
  let sp_nonzero = Hdl.reduce_or ctx sp in
  let stack_raddr = Hdl.decr ctx sp in
  let stack_re = and_b (is "POP") sp_nonzero in
  let stack_rd = Hdl.read_port ctx stack ~addr:stack_raddr ~enable:stack_re in
  let popped_lo = Hdl.select stack_rd ~hi:(aw - 1) ~lo:0 in
  let popped_hi = Hdl.select stack_rd ~hi:(sdw - 1) ~lo:aw in

  let i_minus_1 = Hdl.decr ctx idx_i in
  let i_plus_1 = Hdl.incr ctx idx_i in
  let init_entry =
    Hdl.concat (Hdl.zero ~width:aw) (Hdl.const ~width:aw (cfg.n - 1))
  in
  let left_entry = Hdl.concat lo i_minus_1 in
  let right_entry = Hdl.concat i_plus_1 hi in
  let stack_wdata =
    Hdl.pmux ctx
      [ (is "INIT_PUSH", init_entry); (is "PUSH_L", left_entry) ]
      ~default:right_entry
  in
  let push_l_valid = and_b (is "PUSH_L") (Hdl.gt ctx idx_i lo) in
  let push_r_valid = and_b (is "PUSH_R") (Hdl.lt ctx i_plus_1 hi) in
  let stack_we = or_b (is "INIT_PUSH") (or_b push_l_valid push_r_valid) in
  Hdl.write_port ctx stack ~addr:sp ~data:stack_wdata ~enable:stack_we;

  (* Data-path updates. *)
  let j_at_hi = Hdl.eq ctx idx_j hi in
  let le_pivot =
    if buggy then Hdl.ge ctx arr_rd pivot else Hdl.le ctx arr_rd pivot
  in
  let part_swap = and_b (is "PART") (and_b (Netlist.not_ j_at_hi) le_pivot) in
  let part_skip = and_b (is "PART") (and_b (Netlist.not_ j_at_hi) (Netlist.not_ le_pivot)) in

  Hdl.connect ctx lo (Hdl.mux2 ctx stack_re popped_lo lo);
  Hdl.connect ctx hi (Hdl.mux2 ctx stack_re popped_hi hi);
  Hdl.connect ctx pivot (Hdl.mux2 ctx (is "PIVOT") arr_rd pivot);
  Hdl.connect ctx idx_i
    (Hdl.pmux ctx
       [ (is "PIVOT", lo); (is "SWAP_J", i_plus_1) ]
       ~default:idx_i);
  Hdl.connect ctx idx_j
    (Hdl.pmux ctx
       [
         (is "PIVOT", lo);
         (part_skip, Hdl.incr ctx idx_j);
         (is "SWAP_J", Hdl.incr ctx idx_j);
       ]
       ~default:idx_j);
  Hdl.connect ctx tj (Hdl.mux2 ctx part_swap arr_rd tj);
  Hdl.connect ctx ti
    (Hdl.mux2 ctx (or_b (is "SWAP_I") (is "FIN_I")) arr_rd ti);
  Hdl.connect ctx sp
    (Hdl.pmux ctx
       [ (stack_we, Hdl.incr ctx sp); (stack_re, Hdl.decr ctx sp) ]
       ~default:sp);
  Hdl.connect ctx e0 (Hdl.mux2 ctx (is "CHECK0") arr_rd e0);

  (* Control flow. *)
  let lo_ge_hi = Hdl.ge ctx lo hi in
  Hdl.Fsm.finalize fsm
    [
      (is "INIT_PUSH", "POP");
      (and_b (is "POP") (Netlist.not_ sp_nonzero), "CHECK0");
      (is "POP", "CHECK");
      (and_b (is "CHECK") lo_ge_hi, "POP");
      (is "CHECK", "PIVOT");
      (is "PIVOT", "PART");
      (and_b (is "PART") j_at_hi, "FIN_I");
      (part_swap, "SWAP_I");
      (is "PART", "PART");
      (is "SWAP_I", "SWAP_J");
      (is "SWAP_J", "PART");
      (is "FIN_I", "FIN_HI");
      (is "FIN_HI", "PUSH_L");
      (is "PUSH_L", "PUSH_R");
      (is "PUSH_R", "POP");
      (is "CHECK0", "CHECK1");
      (is "CHECK1", "HALT");
      (is "HALT", "HALT");
    ];

  (* P1: the first element of the sorted array cannot exceed the second.  At
     CHECK1 the read port delivers arr[1] while e0 holds arr[0]. *)
  Hdl.assert_always ctx "P1"
    (Netlist.implies net (is "CHECK1") (Hdl.le ctx e0 arr_rd));
  (* P2: partition bounds popped from the recursion stack are well-formed. *)
  let hi_in_range = Hdl.le ctx hi (Hdl.const ~width:aw (cfg.n - 1)) in
  Hdl.assert_always ctx "P2"
    (Netlist.implies net (is "PIVOT") (and_b (Hdl.lt ctx lo hi) hi_in_range));
  Hdl.output ctx "sp" sp;
  Hdl.output_bit ctx "halted" (is "HALT");
  net
