type config = { n : int; addr_width : int; data_width : int }

let bits_for n =
  let rec go w = if 1 lsl w > n then w else go (w + 1) in
  go 1

let default_config ~n = { n; addr_width = bits_for n; data_width = 8 }

let build ?(buggy = false) cfg =
  if cfg.n < 2 then invalid_arg "Bubblesort.build: need n >= 2";
  if cfg.n >= 1 lsl cfg.addr_width then invalid_arg "Bubblesort.build: n too large";
  let ctx = Hdl.create () in
  let net = Hdl.netlist ctx in
  let aw = cfg.addr_width and dw = cfg.data_width in
  let arr = Hdl.memory ctx ~name:"arr" ~addr_width:aw ~data_width:dw ~init:Netlist.Arbitrary in
  let fsm =
    Hdl.Fsm.create ctx "state"
      ~states:[ "READ_A"; "READ_B"; "WRITE_A"; "WRITE_B"; "STEP"; "CHECK0"; "CHECK1"; "HALT" ]
  in
  let is = Hdl.Fsm.is fsm in
  let and_b = Netlist.and_ net in
  (* Outer bound i runs n-1 .. 1; inner index j runs 0 .. i-1. *)
  let idx_i = Hdl.reg ctx ~init:(Some (cfg.n - 1)) "i" ~width:aw in
  let idx_j = Hdl.reg ctx "j" ~width:aw in
  let va = Hdl.reg ctx "va" ~width:dw in
  let vb = Hdl.reg ctx "vb" ~width:dw in
  let e0 = Hdl.reg ctx "e0" ~width:dw in
  let j_plus_1 = Hdl.incr ctx idx_j in

  let raddr =
    Hdl.pmux ctx
      [
        (is "READ_A", idx_j);
        (is "READ_B", j_plus_1);
        (is "CHECK0", Hdl.zero ~width:aw);
        (is "CHECK1", Hdl.const ~width:aw 1);
      ]
      ~default:idx_j
  in
  let re = Hdl.reduce_or ctx [| is "READ_A"; is "READ_B"; is "CHECK0"; is "CHECK1" |] in
  let rd = Hdl.read_port ctx arr ~addr:raddr ~enable:re in

  (* Decided during READ_B, while arr[j+1] is still on the read bus. *)
  let need_swap = if buggy then Hdl.lt ctx va rd else Hdl.gt ctx va rd in
  let waddr = Hdl.mux2 ctx (is "WRITE_A") idx_j j_plus_1 in
  let wdata = Hdl.mux2 ctx (is "WRITE_A") vb va in
  let we = Netlist.or_ net (is "WRITE_A") (is "WRITE_B") in
  Hdl.write_port ctx arr ~addr:waddr ~data:wdata ~enable:we;

  Hdl.connect ctx va (Hdl.mux2 ctx (is "READ_A") rd va);
  Hdl.connect ctx vb (Hdl.mux2 ctx (is "READ_B") rd vb);
  Hdl.connect ctx e0 (Hdl.mux2 ctx (is "CHECK0") rd e0);

  let inner_done = Hdl.eq ctx j_plus_1 idx_i in
  let outer_done = Hdl.eq_const ctx idx_i 1 in
  let advancing = is "STEP" in
  Hdl.connect ctx idx_j
    (Hdl.pmux ctx
       [ (and_b advancing inner_done, Hdl.zero ~width:aw); (advancing, j_plus_1) ]
       ~default:idx_j);
  Hdl.connect ctx idx_i
    (Hdl.mux2 ctx (and_b advancing (and_b inner_done (Netlist.not_ outer_done)))
       (Hdl.decr ctx idx_i) idx_i);

  Hdl.Fsm.finalize fsm
    [
      (is "READ_A", "READ_B");
      (and_b (is "READ_B") need_swap, "WRITE_A");
      (is "READ_B", "STEP");
      (is "WRITE_A", "WRITE_B");
      (is "WRITE_B", "STEP");
      (and_b (is "STEP") (and_b inner_done outer_done), "CHECK0");
      (is "STEP", "READ_A");
      (is "CHECK0", "CHECK1");
      (is "CHECK1", "HALT");
      (is "HALT", "HALT");
    ];

  Hdl.assert_always ctx "sorted"
    (Netlist.implies net (is "CHECK1") (Hdl.le ctx e0 rd));
  let i_in_range = Hdl.le ctx idx_i (Hdl.const ~width:aw (cfg.n - 1)) in
  Hdl.assert_always ctx "bounds"
    (Netlist.implies net (is "READ_A") (and_b (Hdl.lt ctx idx_j idx_i) i_in_range));
  Hdl.output_bit ctx "halted" (is "HALT");
  net
