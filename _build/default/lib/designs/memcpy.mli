(** A DMA-style memcpy engine: copies [n] words from a source memory with
    arbitrary initial contents into a destination memory, then re-reads both
    and checks them equal.

    Property ["copied"]: during the verify sweep, source and destination
    agree at the checked address.  Provable by the forward-diameter check —
    and only with precise arbitrary-initial-state modeling, since the proof
    must relate two reads of the same (never-written) source location across
    distant time frames.

    [build ~buggy:true] makes the engine skip the last word, so the check
    fails with a genuine counterexample whose initial source memory the
    solver chooses. *)

type config = { n : int; addr_width : int; data_width : int }

val default_config : n:int -> config

val build : ?buggy:bool -> config -> Netlist.t
