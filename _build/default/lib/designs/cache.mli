(** A direct-mapped write-through cache controller — the kind of SoC block
    the paper's introduction motivates (embedded memories serving "diverse
    code and data requirements").

    Three embedded memories: the tag store (valid bit + tag per line), the
    data store (one word per line), and the backing memory the cache fronts
    (arbitrary initial contents).  Requests arrive on the CPU-side inputs:
    an address, a read/write flag and write data.  Reads that hit are served
    from the data store; misses fill the line from backing memory; writes go
    through to backing memory and update the data store on a hit.

    Properties:
    - ["coherent"]: a scoreboard arms on a watched write and demands that any
      later response for the same address return the written data — across
      hit, miss-fill and write-through paths;
    - ["fill_on_miss"]: the fill state is only entered after a miss (control
      invariant, provable by induction).

    [build ~buggy:true] omits the data-store update on write hits, so a
    subsequent read hit returns stale data: EMM finds the classic
    read-fill / write / read-hit scenario. *)

type config = {
  tag_width : int;
  index_width : int;
  data_width : int;
}

val default_config : config
(** [tag_width = 2], [index_width = 2], [data_width = 4]. *)

val build : ?buggy:bool -> config -> Netlist.t
