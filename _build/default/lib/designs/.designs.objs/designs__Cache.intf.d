lib/designs/cache.mli: Netlist
