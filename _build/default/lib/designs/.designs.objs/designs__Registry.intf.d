lib/designs/registry.mli: Netlist
