lib/designs/image_filter.ml: Hdl List Netlist Printf
