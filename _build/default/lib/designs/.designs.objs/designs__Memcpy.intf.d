lib/designs/memcpy.mli: Netlist
