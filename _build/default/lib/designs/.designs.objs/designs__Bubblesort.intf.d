lib/designs/bubblesort.mli: Netlist
