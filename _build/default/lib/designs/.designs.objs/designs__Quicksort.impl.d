lib/designs/quicksort.ml: Hdl Netlist
