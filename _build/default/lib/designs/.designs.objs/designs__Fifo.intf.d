lib/designs/fifo.mli: Netlist
