lib/designs/registry.ml: Bubblesort Cache Fifo Image_filter List Memcpy Multiport Netlist Printf Quicksort Regfile
