lib/designs/fifo.ml: Hdl Netlist
