lib/designs/cache.ml: Array Hdl Netlist
