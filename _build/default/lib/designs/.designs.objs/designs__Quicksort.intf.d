lib/designs/quicksort.mli: Netlist
