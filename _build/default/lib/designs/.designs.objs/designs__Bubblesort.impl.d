lib/designs/bubblesort.ml: Hdl Netlist
