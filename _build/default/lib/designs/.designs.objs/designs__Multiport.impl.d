lib/designs/multiport.ml: Array Fun Hdl List Netlist Printf
