lib/designs/memcpy.ml: Hdl Netlist
