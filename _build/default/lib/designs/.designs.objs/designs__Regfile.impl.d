lib/designs/regfile.ml: Hdl Netlist
