lib/designs/multiport.mli: Netlist
