lib/designs/image_filter.mli: Netlist
