lib/designs/regfile.mli: Netlist
