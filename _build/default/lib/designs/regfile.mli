(** A register file with one write port and two read ports — the smallest
    design exercising EMM's multi-read-port constraints (§4.1, R = 2).

    Property ["read_consistent"]: two simultaneous reads of the same address
    return the same data.  A direct consequence of the memory semantics, so
    EMM proves it by induction at trivial depth — but only because equation
    (6) relates the initial-state words of the two ports.

    [build ~dual_write:true] adds a second write port driven by independent
    inputs; the ports can then collide on an address, which
    {!Emm.find_data_race} detects. *)

type config = { addr_width : int; data_width : int }

val default_config : config

val build : ?dual_write:bool -> config -> Netlist.t
