(** The quicksort machine of the paper's first case study (§5).

    An autonomous (input-free) design that sorts the first [n] elements of an
    array held in a 1R1W embedded memory, using an explicit recursion stack
    held in a second 1R1W memory — the paper implemented the same algorithm
    in Verilog with AW=10/DW=32 (array) and AW=10/DW=24 (stack).  Both
    memories start with {e arbitrary} contents, which is what makes the
    correctness proofs depend on the precise initial-state modeling of §4.2.

    Properties:
    - ["P1"]: when the final check reads the first two sorted elements, the
      first cannot exceed the second;
    - ["P2"]: whenever partitioning starts, the bounds popped from the
      recursion stack are well-formed ([lo < hi <= n-1]) — a control-flow
      property that depends on the stack but not on the array contents,
      mirroring the paper's P2.

    Both hold and are proved by the forward-diameter check; Table 1's column
    D is that diameter. *)

type config = {
  n : int;  (** number of elements to sort *)
  addr_width : int;  (** array address width; requires [n < 2^addr_width] *)
  data_width : int;  (** element width *)
  stack_addr_width : int;
}

val default_config : n:int -> config
(** [addr_width] minimal for [n] + 1 slack, [data_width] = 8,
    [stack_addr_width] = [addr_width] + 1. *)

val build : ?buggy:bool -> config -> Netlist.t
(** [buggy] (default false) flips the partition comparison, planting a real
    sorting bug that falsifies P1. *)

val state_names : string list
