(** A synchronous FIFO over an embedded memory, with an end-to-end data
    integrity checker — the small warm-up design used by the quickstart
    example and the test-suite.

    The checker non-deterministically watches one pushed word (driven by the
    [watch] input): it records the written slot and data, and when that slot
    is popped the property ["fifo_data"] demands the read data match.  A
    second property ["fifo_count"] bounds the occupancy counter.

    [build ~buggy:true] plants a real bug: pushes are not blocked when the
    FIFO is full, so a full-FIFO push overwrites the oldest live entry and
    the watched word can be corrupted — EMM-based BMC finds the minimal
    overwrite scenario. *)

type config = { addr_width : int; data_width : int }

val default_config : config
(** [addr_width = 2], [data_width = 4]. *)

val build : ?buggy:bool -> config -> Netlist.t
