type config = { addr_width : int; data_width : int }

let default_config = { addr_width = 3; data_width = 8 }

let build ?(dual_write = false) cfg =
  let ctx = Hdl.create () in
  let net = Hdl.netlist ctx in
  let aw = cfg.addr_width and dw = cfg.data_width in
  let rf =
    Hdl.memory ctx ~name:"regfile" ~addr_width:aw ~data_width:dw ~init:Netlist.Arbitrary
  in
  let waddr = Hdl.input ctx "waddr" ~width:aw in
  let wdata = Hdl.input ctx "wdata" ~width:dw in
  let we = Hdl.input_bit ctx "we" in
  Hdl.write_port ctx rf ~addr:waddr ~data:wdata ~enable:we;
  if dual_write then begin
    let waddr2 = Hdl.input ctx "waddr2" ~width:aw in
    let wdata2 = Hdl.input ctx "wdata2" ~width:dw in
    let we2 = Hdl.input_bit ctx "we2" in
    Hdl.write_port ctx rf ~addr:waddr2 ~data:wdata2 ~enable:we2
  end;
  let ra1 = Hdl.input ctx "ra1" ~width:aw in
  let ra2 = Hdl.input ctx "ra2" ~width:aw in
  let rd1 = Hdl.read_port ctx rf ~addr:ra1 ~enable:Netlist.true_ in
  let rd2 = Hdl.read_port ctx rf ~addr:ra2 ~enable:Netlist.true_ in
  Hdl.assert_always ctx "read_consistent"
    (Netlist.implies net (Hdl.eq ctx ra1 ra2) (Hdl.eq ctx rd1 rd2));
  Hdl.output ctx "rd1" rd1;
  Hdl.output ctx "rd2" rd2;
  net
