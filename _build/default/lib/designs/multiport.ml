type config = { addr_width : int; data_width : int; pipeline_depth : int }

let default_config = { addr_width = 6; data_width = 8; pipeline_depth = 7 }

let patterns = [| 0xA5; 0x3C; 0x7E; 0x81; 0x5A; 0xC3; 0x18; 0xE7 |]

let property_names = List.init (Array.length patterns) (Printf.sprintf "hit%d")

let build ?(rd_tied_zero = false) cfg =
  let ctx = Hdl.create () in
  let net = Hdl.netlist ctx in
  let aw = cfg.addr_width and dw = cfg.data_width in
  (* Update engine: a mode counter that cycles 0 -> 1 -> 2 -> 0 (and recovers
     from the unreachable 3), and a write-data register masked by the flag
     "mode = 3" — the planted bug: the flag can never rise, so the memory
     never receives non-zero data. *)
  let mode = Hdl.reg ctx "mode" ~width:2 in
  let mode_wraps = Netlist.or_ net (Hdl.eq_const ctx mode 2) (Hdl.eq_const ctx mode 3) in
  Hdl.connect ctx mode (Hdl.mux2 ctx mode_wraps (Hdl.zero ~width:2) (Hdl.incr ctx mode));
  let flag = Hdl.eq_const ctx mode 3 in
  let wdata_in = Hdl.input ctx "wdata" ~width:dw in
  let wd_reg = Hdl.reg ctx "wd" ~width:dw in
  Hdl.connect ctx wd_reg
    (Hdl.and_v ctx wdata_in (Array.make dw flag));
  let waddr = Hdl.input ctx "waddr" ~width:aw in
  let we = Hdl.input_bit ctx "we" in
  (* Lookup side: three independent read ports feeding pattern matchers. *)
  let raddrs = Array.init 3 (fun r -> Hdl.input ctx (Printf.sprintf "raddr%d" r) ~width:aw) in
  let rds =
    if rd_tied_zero then Array.init 3 (fun _ -> Hdl.zero ~width:dw)
    else begin
      let mem =
        Hdl.memory ctx ~name:"table" ~addr_width:aw ~data_width:dw ~init:Netlist.Zeros
      in
      Hdl.write_port ctx mem ~addr:waddr ~data:wd_reg ~enable:we;
      Array.map (fun addr -> Hdl.read_port ctx mem ~addr ~enable:Netlist.true_) raddrs
    end
  in
  (* A handful of latches PBA should find irrelevant. *)
  let spin = Hdl.reg ctx "spin" ~width:8 in
  Hdl.connect ctx spin (Hdl.add ctx spin (Hdl.uresize wdata_in ~width:8));
  Hdl.output ctx "spin" spin;
  (* Match pipelines: a hit on pattern k enters a shift register of
     [pipeline_depth] stages; the properties watch the last stage. *)
  Array.iteri
    (fun k pattern ->
      let port = k mod 3 in
      let hit = Hdl.eq ctx rds.(port) (Hdl.const ~width:dw pattern) in
      let last =
        List.fold_left
          (fun prev stage ->
            let r = Hdl.reg_bit ctx (Printf.sprintf "pipe%d_%d" k stage) in
            Hdl.connect_bit ctx r prev;
            r)
          hit
          (List.init cfg.pipeline_depth Fun.id)
      in
      Hdl.assert_always ctx (Printf.sprintf "hit%d" k) (Netlist.not_ last))
    patterns;
  (* The invariant the paper checked once WE looked suspicious. *)
  let wd_zero = Netlist.not_ (Hdl.reduce_or ctx wd_reg) in
  Hdl.assert_always ctx "mem_quiet" (Netlist.or_ net (Netlist.not_ we) wd_zero);
  net
