(** Reduced ordered binary decision diagrams.

    A classical hash-consed BDD package: nodes are unique per
    [(var, low, high)] triple, so structural equality is physical equality
    and [equal] is O(1).  Operations are memoised.  A manager-level node
    budget lets callers reproduce the "BDD blow-up" failure mode the paper
    reports for explicit memory models — exceeding it raises {!Blowup}. *)

type man
type t

exception Blowup

val man : ?max_nodes:int -> unit -> man
(** [max_nodes] defaults to no limit. *)

val tru : man -> t
val fls : man -> t
val var : man -> int -> t
(** Variable indices double as the (static) order: smaller index = closer to
    the root. *)

val nvar : man -> int -> t
val ite : man -> t -> t -> t -> t
val not_ : man -> t -> t
val and_ : man -> t -> t -> t
val or_ : man -> t -> t -> t
val xor_ : man -> t -> t -> t
val xnor_ : man -> t -> t -> t
val imp : man -> t -> t -> t

val equal : t -> t -> bool
val is_true : t -> bool
val is_false : t -> bool

val exists : man -> int list -> t -> t
(** Existential quantification over the given variables. *)

val forall : man -> int list -> t -> t

val compose : man -> (int -> t option) -> t -> t
(** Simultaneous substitution: replace each variable for which the function
    returns [Some f] by [f]. *)

val eval : t -> (int -> bool) -> bool
val size : t -> int
(** Number of distinct internal nodes reachable from this root. *)

val live_nodes : man -> int
(** Total nodes ever created in the manager. *)

val support : t -> int list
(** Variables this BDD depends on, ascending. *)

val any_sat : t -> (int * bool) list
(** One satisfying partial assignment.  Raises [Not_found] on the false
    BDD. *)
