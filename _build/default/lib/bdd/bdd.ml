exception Blowup

(* Nodes are hash-consed: [id] is unique per (v, low, high) and doubles as
   the memo-table key.  Terminals are the two distinguished nodes below. *)
type t = { id : int; v : int; low : t; high : t }

let rec fls_node = { id = 0; v = max_int; low = fls_node; high = fls_node }
let rec tru_node = { id = 1; v = max_int; low = tru_node; high = tru_node }

type man = {
  unique : (int * int * int, t) Hashtbl.t; (* (v, low.id, high.id) -> node *)
  ite_cache : (int * int * int, t) Hashtbl.t;
  mutable next_id : int;
  max_nodes : int;
}

let man ?(max_nodes = max_int) () =
  {
    unique = Hashtbl.create 4096;
    ite_cache = Hashtbl.create 4096;
    next_id = 2;
    max_nodes;
  }

let tru _ = tru_node
let fls _ = fls_node
let is_true b = b.id = 1
let is_false b = b.id = 0
let equal a b = a == b

let mk m v low high =
  if low == high then low
  else begin
    let key = (v, low.id, high.id) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
      if m.next_id - 2 >= m.max_nodes then raise Blowup;
      let n = { id = m.next_id; v; low; high } in
      m.next_id <- m.next_id + 1;
      Hashtbl.add m.unique key n;
      n
  end

let var m i =
  if i < 0 then invalid_arg "Bdd.var";
  mk m i fls_node tru_node

let nvar m i =
  if i < 0 then invalid_arg "Bdd.nvar";
  mk m i tru_node fls_node

let top_var f g h = min f.v (min g.v h.v)

let cofactor v b = if b.v = v then (b.low, b.high) else (b, b)

let rec ite m f g h =
  if is_true f then g
  else if is_false f then h
  else if g == h then g
  else if is_true g && is_false h then f
  else begin
    let key = (f.id, g.id, h.id) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
      let v = top_var f g h in
      let f0, f1 = cofactor v f in
      let g0, g1 = cofactor v g in
      let h0, h1 = cofactor v h in
      let low = ite m f0 g0 h0 in
      let high = ite m f1 g1 h1 in
      let r = mk m v low high in
      Hashtbl.replace m.ite_cache key r;
      r
  end

let not_ m f = ite m f fls_node tru_node
let and_ m f g = ite m f g fls_node
let or_ m f g = ite m f tru_node g
let xor_ m f g = ite m f (ite m g fls_node tru_node) g
let xnor_ m f g = ite m f g (ite m g fls_node tru_node)
let imp m f g = ite m f g tru_node

let exists m vars f =
  let vars = List.sort_uniq compare vars in
  let cache = Hashtbl.create 256 in
  let rec go f =
    if is_true f || is_false f then f
    else
      match Hashtbl.find_opt cache f.id with
      | Some r -> r
      | None ->
        let r =
          if List.mem f.v vars then or_ m (go f.low) (go f.high)
          else mk m f.v (go f.low) (go f.high)
        in
        Hashtbl.replace cache f.id r;
        r
  in
  go f

let forall m vars f = not_ m (exists m vars (not_ m f))

let compose m subst f =
  let cache = Hashtbl.create 256 in
  let rec go f =
    if is_true f || is_false f then f
    else
      match Hashtbl.find_opt cache f.id with
      | Some r -> r
      | None ->
        let low = go f.low and high = go f.high in
        let guard = match subst f.v with Some g -> g | None -> var m f.v in
        let r = ite m guard high low in
        Hashtbl.replace cache f.id r;
        r
  in
  go f

let rec eval b env =
  if is_true b then true
  else if is_false b then false
  else if env b.v then eval b.high env
  else eval b.low env

let size b =
  let seen = Hashtbl.create 64 in
  let rec go b =
    if (not (is_true b)) && (not (is_false b)) && not (Hashtbl.mem seen b.id) then begin
      Hashtbl.add seen b.id ();
      go b.low;
      go b.high
    end
  in
  go b;
  Hashtbl.length seen

let live_nodes m = m.next_id - 2

let support b =
  let seen = Hashtbl.create 64 in
  let vars = Hashtbl.create 16 in
  let rec go b =
    if (not (is_true b)) && (not (is_false b)) && not (Hashtbl.mem seen b.id) then begin
      Hashtbl.add seen b.id ();
      Hashtbl.replace vars b.v ();
      go b.low;
      go b.high
    end
  in
  go b;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) vars [])

let any_sat b =
  if is_false b then raise Not_found;
  let rec go b acc =
    if is_true b then List.rev acc
    else if is_false b.low then go b.high ((b.v, true) :: acc)
    else go b.low ((b.v, false) :: acc)
  in
  go b []
