(** Explicit memory modeling: the baseline the paper compares EMM against.

    [expand net] returns a new netlist in which every memory module is
    replaced by one latch per memory bit, address-decoded write
    multiplexers, and read multiplexer trees — the state space grows by
    [2^AW * DW] latches per memory, which is exactly the explosion EMM
    avoids.  Input, latch and property names are preserved so that traces
    and property references carry over unchanged. *)

val expand : Netlist.t -> Netlist.t

val expanded_latch_name : string -> int -> int -> string
(** [expanded_latch_name mem addr bit] is the name given to the latch holding
    bit [bit] of word [addr] of memory [mem]. *)
