type signal = int

let is_complement s = s land 1 = 1
let node_of s = s lsr 1
let signal_of_node n compl = (2 * n) lor (if compl then 1 else 0)
let not_ s = s lxor 1
let false_ = 0
let true_ = 1
let of_bool b = if b then true_ else false_

type inode =
  | INconst
  | INinput of string
  | INlatch of { lname : string; linit : bool option; mutable next : int (* -1 unset *) }
  | INand of int * int
  | INmem_out of { mem : int; port : int; bit : int }

type mem_init = Zeros | Arbitrary | Words of int array

type wport = { w_addr : signal array; w_data : signal array; w_enable : signal }
type rport = { r_addr : signal array; r_enable : signal; r_out : signal array }

type memory = {
  mem_id : int;
  mname : string;
  addr_width : int;
  data_width : int;
  minit : mem_init;
  mutable wports : wport list; (* reverse order *)
  mutable rports : rport list; (* reverse order *)
}

type t = {
  mutable nodes : inode array;
  mutable num_nodes : int;
  strash : (int * int, int) Hashtbl.t;
  mutable rev_inputs : int list;
  mutable rev_latches : int list;
  mutable rev_memories : memory list;
  mutable rev_properties : (string * signal) list;
  mutable rev_outputs : (string * signal) list;
}

let create () =
  let t =
    {
      nodes = Array.make 1024 INconst;
      num_nodes = 0;
      strash = Hashtbl.create 4096;
      rev_inputs = [];
      rev_latches = [];
      rev_memories = [];
      rev_properties = [];
      rev_outputs = [];
    }
  in
  t.nodes.(0) <- INconst;
  t.num_nodes <- 1;
  t

let alloc t n =
  if t.num_nodes = Array.length t.nodes then begin
    let nodes = Array.make (2 * t.num_nodes) INconst in
    Array.blit t.nodes 0 nodes 0 t.num_nodes;
    t.nodes <- nodes
  end;
  let id = t.num_nodes in
  t.nodes.(id) <- n;
  t.num_nodes <- id + 1;
  id

let input t name =
  let id = alloc t (INinput name) in
  t.rev_inputs <- id :: t.rev_inputs;
  signal_of_node id false

let latch t ?(init = Some false) name =
  let id = alloc t (INlatch { lname = name; linit = init; next = -1 }) in
  t.rev_latches <- id :: t.rev_latches;
  signal_of_node id false

let set_next t l n =
  if is_complement l then invalid_arg "Netlist.set_next: complemented latch reference";
  match t.nodes.(node_of l) with
  | INlatch r ->
    if r.next >= 0 then invalid_arg "Netlist.set_next: next-state already set";
    r.next <- n
  | INconst | INinput _ | INand _ | INmem_out _ ->
    invalid_arg "Netlist.set_next: not a latch"

let and_ t a b =
  if a = false_ || b = false_ then false_
  else if a = true_ then b
  else if b = true_ then a
  else if a = b then a
  else if a = not_ b then false_
  else begin
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt t.strash key with
    | Some id -> signal_of_node id false
    | None ->
      let ka, kb = key in
      let id = alloc t (INand (ka, kb)) in
      Hashtbl.add t.strash key id;
      signal_of_node id false
  end

let or_ t a b = not_ (and_ t (not_ a) (not_ b))
let implies t a b = or_ t (not_ a) b
let xor_ t a b = or_ t (and_ t a (not_ b)) (and_ t (not_ a) b)
let xnor_ t a b = not_ (xor_ t a b)
let mux t sel a b = or_ t (and_ t sel a) (and_ t (not_ sel) b)
let and_list t = List.fold_left (and_ t) true_
let or_list t = List.fold_left (or_ t) false_

let add_memory t ~name ~addr_width ~data_width ~init =
  if addr_width <= 0 || data_width <= 0 then invalid_arg "Netlist.add_memory: bad widths";
  let m =
    {
      mem_id = List.length t.rev_memories;
      mname = name;
      addr_width;
      data_width;
      minit = init;
      wports = [];
      rports = [];
    }
  in
  t.rev_memories <- m :: t.rev_memories;
  m

let add_write_port _t m ~addr ~data ~enable =
  if Array.length addr <> m.addr_width then invalid_arg "add_write_port: address width";
  if Array.length data <> m.data_width then invalid_arg "add_write_port: data width";
  let idx = List.length m.wports in
  m.wports <- { w_addr = addr; w_data = data; w_enable = enable } :: m.wports;
  idx

let add_read_port t m ~addr ~enable =
  if Array.length addr <> m.addr_width then invalid_arg "add_read_port: address width";
  let idx = List.length m.rports in
  let out =
    Array.init m.data_width (fun bit ->
        signal_of_node (alloc t (INmem_out { mem = m.mem_id; port = idx; bit })) false)
  in
  m.rports <- { r_addr = addr; r_enable = enable; r_out = out } :: m.rports;
  out

let memories t = List.rev t.rev_memories
let memory_name m = m.mname
let memory_id m = m.mem_id
let memory_addr_width m = m.addr_width
let memory_data_width m = m.data_width
let memory_init m = m.minit
let num_write_ports m = List.length m.wports
let num_read_ports m = List.length m.rports

let write_port m w =
  let p = List.nth (List.rev m.wports) w in
  (p.w_addr, p.w_data, p.w_enable)

let read_port m r =
  let p = List.nth (List.rev m.rports) r in
  (p.r_addr, p.r_enable, p.r_out)

let add_property t name s = t.rev_properties <- (name, s) :: t.rev_properties
let properties t = List.rev t.rev_properties

let find_property t name =
  match List.assoc_opt name t.rev_properties with
  | Some s -> s
  | None -> invalid_arg ("Netlist.find_property: unknown property " ^ name)

let add_output t name s = t.rev_outputs <- (name, s) :: t.rev_outputs
let outputs t = List.rev t.rev_outputs

type node =
  | Const_false
  | Input of string
  | Latch of { name : string; init : bool option; next : signal option }
  | And of signal * signal
  | Mem_out of { mem : int; port : int; bit : int }

let node t id =
  if id < 0 || id >= t.num_nodes then invalid_arg "Netlist.node: bad id";
  match t.nodes.(id) with
  | INconst -> Const_false
  | INinput name -> Input name
  | INlatch { lname; linit; next } ->
    Latch { name = lname; init = linit; next = (if next < 0 then None else Some next) }
  | INand (a, b) -> And (a, b)
  | INmem_out { mem; port; bit } -> Mem_out { mem; port; bit }

let num_nodes t = t.num_nodes
let inputs t = List.rev_map (fun id -> signal_of_node id false) t.rev_inputs
let latches t = List.rev_map (fun id -> signal_of_node id false) t.rev_latches

let latch_next t l =
  match t.nodes.(node_of l) with
  | INlatch { next; _ } ->
    if next < 0 then invalid_arg "Netlist.latch_next: next-state unset"
    else if is_complement l then not_ next
    else next
  | INconst | INinput _ | INand _ | INmem_out _ ->
    invalid_arg "Netlist.latch_next: not a latch"

let latch_init t l =
  match t.nodes.(node_of l) with
  | INlatch { linit; _ } ->
    if is_complement l then Option.map not linit else linit
  | INconst | INinput _ | INand _ | INmem_out _ ->
    invalid_arg "Netlist.latch_init: not a latch"

let latch_name t l =
  match t.nodes.(node_of l) with
  | INlatch { lname; _ } -> lname
  | INconst | INinput _ | INand _ | INmem_out _ ->
    invalid_arg "Netlist.latch_name: not a latch"

(* Topological fold over the combinational fan-in cone (stops at latches,
   inputs, memory outputs and constants). *)
let fold_cone t roots ~init ~f =
  let visited = Hashtbl.create 1024 in
  let acc = ref init in
  let rec visit id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      (match t.nodes.(id) with
      | INand (a, b) ->
        visit (node_of a);
        visit (node_of b)
      | INconst | INinput _ | INlatch _ | INmem_out _ -> ());
      acc := f !acc id (node t id)
    end
  in
  List.iter (fun s -> visit (node_of s)) roots;
  !acc

let memory_interface_signals m =
  List.concat_map
    (fun p -> p.w_enable :: (Array.to_list p.w_addr @ Array.to_list p.w_data))
    m.wports
  @ List.concat_map (fun p -> p.r_enable :: Array.to_list p.r_addr) m.rports

let support_latches t roots =
  let seen_latch = Hashtbl.create 64 in
  let seen_mem = Hashtbl.create 8 in
  let visited = Hashtbl.create 1024 in
  let order = ref [] in
  let rec visit id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      match t.nodes.(id) with
      | INconst | INinput _ -> ()
      | INand (a, b) ->
        visit (node_of a);
        visit (node_of b)
      | INlatch { next; _ } ->
        if not (Hashtbl.mem seen_latch id) then begin
          Hashtbl.add seen_latch id ();
          order := id :: !order
        end;
        if next >= 0 then visit (node_of next)
      | INmem_out { mem; _ } ->
        if not (Hashtbl.mem seen_mem mem) then begin
          Hashtbl.add seen_mem mem ();
          let m = List.find (fun m -> m.mem_id = mem) t.rev_memories in
          List.iter (fun s -> visit (node_of s)) (memory_interface_signals m)
        end
    end
  in
  List.iter (fun s -> visit (node_of s)) roots;
  List.rev_map (fun id -> signal_of_node id false) !order

type stats = {
  num_inputs : int;
  num_latches : int;
  num_ands : int;
  num_memories : int;
  num_mem_bits : int;
}

let stats t =
  let num_ands = ref 0 in
  for i = 0 to t.num_nodes - 1 do
    match t.nodes.(i) with
    | INand _ -> incr num_ands
    | INconst | INinput _ | INlatch _ | INmem_out _ -> ()
  done;
  let num_mem_bits =
    List.fold_left
      (fun acc m -> acc + ((1 lsl m.addr_width) * m.data_width))
      0 t.rev_memories
  in
  {
    num_inputs = List.length t.rev_inputs;
    num_latches = List.length t.rev_latches;
    num_ands = !num_ands;
    num_memories = List.length t.rev_memories;
    num_mem_bits;
  }

let pp_stats ppf s =
  Format.fprintf ppf "inputs=%d latches=%d ands=%d memories=%d mem-bits=%d"
    s.num_inputs s.num_latches s.num_ands s.num_memories s.num_mem_bits
