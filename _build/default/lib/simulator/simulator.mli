(** Cycle-accurate simulation of netlists with memory modules.

    Used to replay counterexample traces produced by BMC (validating that a
    reported bug is a real behaviour of the design) and to cross-check the
    EMM and explicit memory models in the test-suite.

    Memory semantics follow the paper (§2.3): reads are combinational and
    observe the {e current} contents; writes performed in a cycle become
    visible from the next cycle on.  A read port whose enable is low drives
    0 — well-formed designs must not depend on read data outside an enabled
    read, which is the contract the EMM model relies on. *)

type t

val create :
  ?latch_values:(Netlist.signal -> bool) ->
  ?mem_values:(Netlist.memory -> int -> int) ->
  Netlist.t ->
  t
(** Build a simulator in its initial state.  [latch_values] supplies initial
    values for latches declared with arbitrary initial state (default
    [false]); [mem_values m a] supplies the initial word at address [a] of a
    memory with [Arbitrary] contents (default 0). *)

val step : t -> inputs:(string -> bool) -> unit
(** Evaluate one clock cycle: combinational values become observable through
    {!value}, then latches and memories advance.  Raises [Failure] on a
    combinational cycle through a memory address path. *)

val value : t -> Netlist.signal -> bool
(** Combinational value of a signal in the most recently evaluated cycle.
    Raises [Invalid_argument] before the first {!step}. *)

val latch_value : t -> Netlist.signal -> bool
(** Current state of a latch (before the next step). *)

val mem_word : t -> Netlist.memory -> int -> int
(** Current contents of a memory location. *)

val cycle : t -> int
(** Number of completed steps. *)
