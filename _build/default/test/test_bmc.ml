(* BMC engine tests on small memory-free designs: counterexample depths,
   induction proofs, trace replay, and loop-free-path termination. *)

let counter_design ~width =
  let ctx = Hdl.create () in
  let count = Hdl.reg ctx "count" ~width in
  Hdl.connect ctx count (Hdl.incr ctx count);
  (ctx, count)

(* A counter that counts up to [limit] and holds. *)
let saturating_counter ~width ~limit =
  let ctx = Hdl.create () in
  let count = Hdl.reg ctx "count" ~width in
  let at_limit = Hdl.eq_const ctx count limit in
  Hdl.connect ctx count
    (Hdl.mux2 ctx at_limit count (Hdl.incr ctx count));
  (ctx, count)

let check ?config net ~property = Bmc.Engine.check ?config net ~property

let test_counter_counterexample () =
  let ctx, count = counter_design ~width:3 in
  Hdl.assert_always ctx "never5" (Netlist.not_ (Hdl.eq_const ctx count 5));
  let net = Hdl.netlist ctx in
  let result = check net ~property:"never5" in
  match result.Bmc.Engine.verdict with
  | Bmc.Engine.Counterexample t ->
    Alcotest.(check int) "depth" 5 t.Bmc.Trace.depth;
    Alcotest.(check bool) "replays" true (Bmc.Trace.replay net t)
  | _ -> Alcotest.fail "expected counterexample"

let test_counter_wraps () =
  (* A 3-bit counter wraps, so it revisits 0: no state is unreachable. *)
  let ctx, count = counter_design ~width:3 in
  Hdl.assert_always ctx "never7" (Netlist.not_ (Hdl.eq_const ctx count 7));
  let net = Hdl.netlist ctx in
  let result = check net ~property:"never7" in
  match result.Bmc.Engine.verdict with
  | Bmc.Engine.Counterexample t -> Alcotest.(check int) "depth" 7 t.Bmc.Trace.depth
  | _ -> Alcotest.fail "expected counterexample"

let test_saturating_proof () =
  (* Counter saturates at 4, so it can never reach 6: provable. *)
  let ctx, count = saturating_counter ~width:3 ~limit:4 in
  Hdl.assert_always ctx "never6" (Netlist.not_ (Hdl.eq_const ctx count 6));
  let net = Hdl.netlist ctx in
  let result = check net ~property:"never6" in
  (match result.Bmc.Engine.verdict with
  | Bmc.Engine.Proof { depth; _ } ->
    Alcotest.(check bool) "reasonable proof depth" true (depth <= 8)
  | v ->
    Alcotest.failf "expected proof, got %s"
      (Format.asprintf "%a" Bmc.Engine.pp_verdict v))

let test_forward_diameter () =
  (* Counter saturates at 3, so 7 is unreachable — but "count <> 7" is not
     inductive at small depths (the unreachable chain 4 -> 5 -> 6 -> 7
     provides backward paths), so the forward-diameter check fires first,
     exactly when no loop-free path of length 4 exists from reset. *)
  let ctx, count = saturating_counter ~width:3 ~limit:3 in
  Hdl.assert_always ctx "never7" (Netlist.not_ (Hdl.eq_const ctx count 7));
  let net = Hdl.netlist ctx in
  let result = check net ~property:"never7" in
  match result.Bmc.Engine.verdict with
  | Bmc.Engine.Proof { depth; kind = Bmc.Engine.Forward_diameter } ->
    Alcotest.(check int) "diameter" 4 depth
  | v ->
    Alcotest.failf "expected forward-diameter proof, got %s"
      (Format.asprintf "%a" Bmc.Engine.pp_verdict v)

let test_backward_induction () =
  (* A sticky flag: once set it stays set; starts set.  "flag" is inductive,
     so backward induction proves it at depth 1 even though the counter next
     to it has a long diameter. *)
  let ctx = Hdl.create () in
  let flag = Hdl.reg_bit ctx ~init:(Some true) "flag" in
  Hdl.connect_bit ctx flag flag;
  let count = Hdl.reg ctx "count" ~width:6 in
  Hdl.connect ctx count (Hdl.incr ctx count);
  Hdl.assert_always ctx "flag" flag;
  let net = Hdl.netlist ctx in
  let result = check net ~property:"flag" in
  match result.Bmc.Engine.verdict with
  | Bmc.Engine.Proof { depth; kind = Bmc.Engine.Backward_induction } ->
    Alcotest.(check bool) "shallow" true (depth <= 2)
  | v ->
    Alcotest.failf "expected induction proof, got %s"
      (Format.asprintf "%a" Bmc.Engine.pp_verdict v)

let test_bounded_safe () =
  let ctx, count = counter_design ~width:6 in
  Hdl.assert_always ctx "never50" (Netlist.not_ (Hdl.eq_const ctx count 50));
  let net = Hdl.netlist ctx in
  let config = { Bmc.Engine.default_config with max_depth = 10 } in
  let result = check ~config net ~property:"never50" in
  match result.Bmc.Engine.verdict with
  | Bmc.Engine.Bounded_safe 10 -> ()
  | _ -> Alcotest.fail "expected bounded-safe"

let test_input_driven_trace () =
  (* The failure needs specific input values; the trace must carry them. *)
  let ctx = Hdl.create () in
  let data = Hdl.input ctx "data" ~width:4 in
  let seen = Hdl.reg_bit ctx "seen" in
  Hdl.connect_bit ctx seen
    (Netlist.or_ (Hdl.netlist ctx) seen (Hdl.eq_const ctx data 9));
  Hdl.assert_always ctx "never_seen" (Netlist.not_ seen);
  let net = Hdl.netlist ctx in
  let result = check net ~property:"never_seen" in
  match result.Bmc.Engine.verdict with
  | Bmc.Engine.Counterexample t ->
    Alcotest.(check int) "depth" 1 t.Bmc.Trace.depth;
    Alcotest.(check bool) "replays" true (Bmc.Trace.replay net t)
  | _ -> Alcotest.fail "expected counterexample"

let test_arbitrary_init_latch () =
  (* A latch with arbitrary initial value can start violating. *)
  let ctx = Hdl.create () in
  let mystery = Hdl.reg ctx ~init:None "mystery" ~width:2 in
  Hdl.connect ctx mystery mystery;
  Hdl.assert_always ctx "not3" (Netlist.not_ (Hdl.eq_const ctx mystery 3));
  let net = Hdl.netlist ctx in
  let result = check net ~property:"not3" in
  match result.Bmc.Engine.verdict with
  | Bmc.Engine.Counterexample t ->
    Alcotest.(check int) "depth 0" 0 t.Bmc.Trace.depth;
    Alcotest.(check bool) "replays with latch0" true (Bmc.Trace.replay net t)
  | _ -> Alcotest.fail "expected counterexample at depth 0"

let test_latch_reasons_locality () =
  (* Two independent counters; the property watches only one.  PBA latch
     reasons must not include the irrelevant counter. *)
  let ctx = Hdl.create () in
  let a = Hdl.reg ctx "a" ~width:3 in
  Hdl.connect ctx a (Hdl.incr ctx a);
  let b = Hdl.reg ctx "b" ~width:3 in
  Hdl.connect ctx b (Hdl.incr ctx b);
  Hdl.assert_always ctx "a_small" (Netlist.not_ (Hdl.eq_const ctx a 6));
  let net = Hdl.netlist ctx in
  let config =
    { Bmc.Engine.default_config with
      max_depth = 5;
      proof_checks = false;
      collect_reasons = true;
    }
  in
  let result = check ~config net ~property:"a_small" in
  (match result.Bmc.Engine.verdict with
  | Bmc.Engine.Bounded_safe _ -> ()
  | _ -> Alcotest.fail "expected bounded-safe");
  let names =
    List.map (Netlist.latch_name net) result.Bmc.Engine.stats.Bmc.Engine.latch_reasons
  in
  Alcotest.(check bool) "a in reasons" true
    (List.exists (fun n -> String.length n >= 1 && n.[0] = 'a') names);
  Alcotest.(check bool) "b not in reasons" false
    (List.exists (fun n -> String.length n >= 1 && n.[0] = 'b') names)

let test_free_latch_abstraction () =
  (* Abstracting the only relevant latch turns a provable property into a
     spurious counterexample. *)
  let ctx = Hdl.create () in
  let flag = Hdl.reg_bit ctx ~init:(Some true) "flag" in
  Hdl.connect_bit ctx flag flag;
  Hdl.assert_always ctx "flag" flag;
  let net = Hdl.netlist ctx in
  let config =
    { Bmc.Engine.default_config with
      max_depth = 3;
      proof_checks = false;
      free_latches = (fun l -> Netlist.latch_name net l = "flag");
    }
  in
  let result = check ~config net ~property:"flag" in
  match result.Bmc.Engine.verdict with
  | Bmc.Engine.Counterexample t ->
    (* ... which must fail to replay on the concrete design. *)
    Alcotest.(check bool) "spurious" false (Bmc.Trace.replay net t)
  | _ -> Alcotest.fail "expected spurious counterexample"

(* Property test: BMC counterexample depth for a constant-comparison property
   on a free-running counter equals the constant. *)
let prop_counter_depth =
  QCheck2.Test.make ~count:30 ~name:"counter CE depth matches target value"
    (QCheck2.Gen.int_range 1 14)
    (fun target ->
      let ctx, count = counter_design ~width:4 in
      Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx count target));
      let net = Hdl.netlist ctx in
      let result = check net ~property:"p" in
      match result.Bmc.Engine.verdict with
      | Bmc.Engine.Counterexample t ->
        t.Bmc.Trace.depth = target && Bmc.Trace.replay net t
      | _ -> false)

(* Bit of a bus-shaped input name: "prefix[i]" reads bit i of [v]. *)
let bus_env assignments name =
  match String.index_opt name '[' with
  | None -> ( match List.assoc_opt name assignments with Some v -> v <> 0 | None -> false)
  | Some br ->
    let prefix = String.sub name 0 br in
    let idx = int_of_string (String.sub name (br + 1) (String.length name - br - 2)) in
    (match List.assoc_opt prefix assignments with
    | Some v -> (v lsr idx) land 1 = 1
    | None -> false)

(* Property test: explicit expansion preserves simulation behaviour. *)
let prop_explicit_expansion_equiv =
  QCheck2.Test.make ~count:50 ~name:"explicit expansion simulates identically"
    QCheck2.Gen.(
      list_size (int_range 1 8)
        (quad (int_bound 3) (int_bound 7) bool (int_bound 3)))
    (fun steps ->
      (* A little design: write input data at input address, read back at
         another address, accumulate reads. *)
      let build () =
        let ctx = Hdl.create () in
        let waddr = Hdl.input ctx "waddr" ~width:2 in
        let wdata = Hdl.input ctx "wdata" ~width:3 in
        let we = Hdl.input_bit ctx "we" in
        let raddr = Hdl.input ctx "raddr" ~width:2 in
        let mem =
          Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:3 ~init:Netlist.Zeros
        in
        Hdl.write_port ctx mem ~addr:waddr ~data:wdata ~enable:we;
        let rd = Hdl.read_port ctx mem ~addr:raddr ~enable:Netlist.true_ in
        let acc = Hdl.reg ctx "acc" ~width:3 in
        Hdl.connect ctx acc (Hdl.xor_v ctx acc rd);
        Hdl.output ctx "acc_out" acc;
        Hdl.netlist ctx
      in
      let net = build () in
      let expanded = Explicitmem.expand net in
      let sim1 = Simulator.create net in
      let sim2 = Simulator.create expanded in
      List.for_all
        (fun (wa, wd, we, ra) ->
          let env =
            bus_env
              [ ("waddr", wa); ("wdata", wd); ("we", Bool.to_int we); ("raddr", ra) ]
          in
          Simulator.step sim1 ~inputs:env;
          Simulator.step sim2 ~inputs:env;
          List.for_all2
            (fun (n1, s1) (n2, s2) ->
              n1 = n2 && Simulator.value sim1 s1 = Simulator.value sim2 s2)
            (Netlist.outputs net) (Netlist.outputs expanded))
        steps)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_counter_depth; prop_explicit_expansion_equiv ]
  in
  Alcotest.run "bmc"
    [
      ( "engine",
        [
          Alcotest.test_case "counter counterexample" `Quick test_counter_counterexample;
          Alcotest.test_case "counter wraps" `Quick test_counter_wraps;
          Alcotest.test_case "saturating proof" `Quick test_saturating_proof;
          Alcotest.test_case "forward diameter" `Quick test_forward_diameter;
          Alcotest.test_case "backward induction" `Quick test_backward_induction;
          Alcotest.test_case "bounded safe" `Quick test_bounded_safe;
          Alcotest.test_case "input-driven trace" `Quick test_input_driven_trace;
          Alcotest.test_case "arbitrary-init latch" `Quick test_arbitrary_init_latch;
          Alcotest.test_case "latch reasons locality" `Quick test_latch_reasons_locality;
          Alcotest.test_case "free-latch abstraction" `Quick test_free_latch_abstraction;
        ] );
      ("property", qsuite);
    ]
