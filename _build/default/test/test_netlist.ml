(* Structural netlist tests: constant folding, structural hashing, cone
   traversal, sequential support, and memory bookkeeping. *)

let test_constant_folding () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  Alcotest.(check bool) "x & false" true (Netlist.and_ net a Netlist.false_ = Netlist.false_);
  Alcotest.(check bool) "x & true" true (Netlist.and_ net a Netlist.true_ = a);
  Alcotest.(check bool) "x & x" true (Netlist.and_ net a a = a);
  Alcotest.(check bool) "x & !x" true
    (Netlist.and_ net a (Netlist.not_ a) = Netlist.false_);
  Alcotest.(check bool) "!!x" true (Netlist.not_ (Netlist.not_ a) = a)

let test_structural_hashing () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  let g1 = Netlist.and_ net a b in
  let g2 = Netlist.and_ net b a in
  Alcotest.(check bool) "commutative sharing" true (g1 = g2);
  let before = Netlist.num_nodes net in
  let _ = Netlist.and_ net a b in
  Alcotest.(check int) "no new node" before (Netlist.num_nodes net)

let test_latch_api () =
  let net = Netlist.create () in
  let l = Netlist.latch net ~init:(Some true) "l" in
  Alcotest.(check bool) "init" true (Netlist.latch_init net l = Some true);
  Alcotest.(check bool) "complement init" true
    (Netlist.latch_init net (Netlist.not_ l) = Some false);
  Alcotest.(check string) "name" "l" (Netlist.latch_name net l);
  Netlist.set_next net l (Netlist.not_ l);
  Alcotest.(check bool) "next" true (Netlist.latch_next net l = Netlist.not_ l);
  Alcotest.(check bool) "complemented next" true
    (Netlist.latch_next net (Netlist.not_ l) = l);
  Alcotest.check_raises "double set"
    (Invalid_argument "Netlist.set_next: next-state already set") (fun () ->
      Netlist.set_next net l l)

let test_unset_next_rejected () =
  let net = Netlist.create () in
  let l = Netlist.latch net "l" in
  Alcotest.check_raises "unset next"
    (Invalid_argument "Netlist.latch_next: next-state unset") (fun () ->
      ignore (Netlist.latch_next net l))

let test_fold_cone_topological () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let b = Netlist.input net "b" in
  let g1 = Netlist.and_ net a b in
  let g2 = Netlist.and_ net g1 (Netlist.not_ a) in
  let order =
    Netlist.fold_cone net [ g2 ] ~init:[] ~f:(fun acc id _ -> id :: acc) |> List.rev
  in
  (* Children must appear before parents. *)
  let pos id = Option.get (List.find_index (( = ) id) order) in
  Alcotest.(check bool) "a before g1" true
    (pos (Netlist.node_of a) < pos (Netlist.node_of g1));
  Alcotest.(check bool) "g1 before g2" true
    (pos (Netlist.node_of g1) < pos (Netlist.node_of g2));
  (* The cone must not contain unrelated nodes. *)
  let c = Netlist.input net "c" in
  Alcotest.(check bool) "c outside" true (not (List.mem (Netlist.node_of c) order))

let test_fold_cone_stops_at_latches () =
  let net = Netlist.create () in
  let l = Netlist.latch net "l" in
  let deep = Netlist.input net "deep" in
  Netlist.set_next net l deep;
  let g = Netlist.and_ net l l in
  ignore g;
  let ids = Netlist.fold_cone net [ l ] ~init:[] ~f:(fun acc id _ -> id :: acc) in
  Alcotest.(check bool) "latch visited" true (List.mem (Netlist.node_of l) ids);
  Alcotest.(check bool) "next-state cone not entered" true
    (not (List.mem (Netlist.node_of deep) ids))

let test_support_latches () =
  let net = Netlist.create () in
  let l1 = Netlist.latch net "l1" in
  let l2 = Netlist.latch net "l2" in
  let l3 = Netlist.latch net "l3" in
  (* l1 <- l2, l2 <- l2, l3 independent. *)
  Netlist.set_next net l1 l2;
  Netlist.set_next net l2 l2;
  Netlist.set_next net l3 l3;
  let support = Netlist.support_latches net [ l1 ] in
  Alcotest.(check bool) "l1 in" true (List.mem l1 support);
  Alcotest.(check bool) "l2 in (through next)" true (List.mem l2 support);
  Alcotest.(check bool) "l3 out" true (not (List.mem l3 support))

let test_support_through_memory () =
  let net = Netlist.create () in
  let l_addr = Netlist.latch net "l_addr" in
  Netlist.set_next net l_addr l_addr;
  let l_other = Netlist.latch net "l_other" in
  Netlist.set_next net l_other l_other;
  let m = Netlist.add_memory net ~name:"m" ~addr_width:1 ~data_width:1 ~init:Netlist.Zeros in
  let out = Netlist.add_read_port net m ~addr:[| l_addr |] ~enable:Netlist.true_ in
  (* A consumer of the read data transitively depends on the address latch. *)
  let support = Netlist.support_latches net [ out.(0) ] in
  Alcotest.(check bool) "address latch in support" true (List.mem l_addr support);
  Alcotest.(check bool) "unrelated latch out" true (not (List.mem l_other support))

let test_memory_ports () =
  let net = Netlist.create () in
  let m = Netlist.add_memory net ~name:"m" ~addr_width:2 ~data_width:3 ~init:Netlist.Arbitrary in
  let a = Array.init 2 (fun i -> Netlist.input net (Printf.sprintf "a%d" i)) in
  let d = Array.init 3 (fun i -> Netlist.input net (Printf.sprintf "d%d" i)) in
  let en = Netlist.input net "en" in
  let w = Netlist.add_write_port net m ~addr:a ~data:d ~enable:en in
  Alcotest.(check int) "first port index" 0 w;
  let out = Netlist.add_read_port net m ~addr:a ~enable:en in
  Alcotest.(check int) "read width" 3 (Array.length out);
  Alcotest.(check int) "wports" 1 (Netlist.num_write_ports m);
  Alcotest.(check int) "rports" 1 (Netlist.num_read_ports m);
  let addr, data, enable = Netlist.write_port m 0 in
  Alcotest.(check bool) "write port contents" true (addr = a && data = d && enable = en);
  Alcotest.check_raises "width check" (Invalid_argument "add_write_port: address width")
    (fun () -> ignore (Netlist.add_write_port net m ~addr:[| en |] ~data:d ~enable:en))

let test_stats () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let l = Netlist.latch net "l" in
  Netlist.set_next net l (Netlist.and_ net a l);
  let _ =
    Netlist.add_memory net ~name:"m" ~addr_width:4 ~data_width:8 ~init:Netlist.Zeros
  in
  let s = Netlist.stats net in
  Alcotest.(check int) "inputs" 1 s.Netlist.num_inputs;
  Alcotest.(check int) "latches" 1 s.Netlist.num_latches;
  Alcotest.(check int) "ands" 1 s.Netlist.num_ands;
  Alcotest.(check int) "memories" 1 s.Netlist.num_memories;
  Alcotest.(check int) "mem bits" 128 s.Netlist.num_mem_bits

let test_properties_and_outputs () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  Netlist.add_property net "p" a;
  Netlist.add_output net "o" (Netlist.not_ a);
  Alcotest.(check bool) "find property" true (Netlist.find_property net "p" = a);
  Alcotest.(check int) "outputs" 1 (List.length (Netlist.outputs net));
  Alcotest.check_raises "unknown property"
    (Invalid_argument "Netlist.find_property: unknown property q") (fun () ->
      ignore (Netlist.find_property net "q"))

(* Property: and_ agrees with the boolean semantics under any environment
   (via fold_cone evaluation). *)
let prop_and_or_xor_semantics =
  QCheck2.Test.make ~count:200 ~name:"gate construction matches boolean semantics"
    QCheck2.Gen.(array_size (pure 4) bool)
    (fun env ->
      let net = Netlist.create () in
      let inputs = Array.init 4 (fun i -> Netlist.input net (string_of_int i)) in
      let eval_tbl = Hashtbl.create 16 in
      Array.iteri (fun i s -> Hashtbl.replace eval_tbl (Netlist.node_of s) env.(i)) inputs;
      let rec eval s =
        let v =
          match Netlist.node net (Netlist.node_of s) with
          | Netlist.Const_false -> false
          | Netlist.Input _ -> Hashtbl.find eval_tbl (Netlist.node_of s)
          | Netlist.And (a, b) -> eval a && eval b
          | Netlist.Latch _ | Netlist.Mem_out _ -> assert false
        in
        if Netlist.is_complement s then not v else v
      in
      let a = inputs.(0) and b = inputs.(1) and c = inputs.(2) and d = inputs.(3) in
      let formula = Netlist.or_ net (Netlist.and_ net a b) (Netlist.xor_ net c d) in
      eval formula = ((env.(0) && env.(1)) || env.(2) <> env.(3)))

let () =
  Alcotest.run "netlist"
    [
      ( "unit",
        [
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "structural hashing" `Quick test_structural_hashing;
          Alcotest.test_case "latch api" `Quick test_latch_api;
          Alcotest.test_case "unset next rejected" `Quick test_unset_next_rejected;
          Alcotest.test_case "fold_cone topological" `Quick test_fold_cone_topological;
          Alcotest.test_case "fold_cone stops at latches" `Quick
            test_fold_cone_stops_at_latches;
          Alcotest.test_case "support latches" `Quick test_support_latches;
          Alcotest.test_case "support through memory" `Quick test_support_through_memory;
          Alcotest.test_case "memory ports" `Quick test_memory_ports;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "properties and outputs" `Quick test_properties_and_outputs;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_and_or_xor_semantics ]);
    ]
