(* Platform-façade tests: every verification method agrees on easy designs,
   spurious counterexamples are flagged, and the race checker behaves. *)

let options max_depth = { Emmver.default_options with Emmver.max_depth }

let conclusion ?(max_depth = 30) method_ net property =
  (Emmver.verify ~options:(options max_depth) ~method_ net ~property).Emmver.conclusion

let test_methods_agree_on_proof () =
  (* A provable memory property: never-written zero memory reads zero. *)
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:2 ~init:Netlist.Zeros in
  let ra = Hdl.input ctx "ra" ~width:2 in
  let rd = Hdl.read_port ctx mem ~addr:ra ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" (Hdl.eq_const ctx rd 0);
  let net = Hdl.netlist ctx in
  List.iter
    (fun method_ ->
      match conclusion method_ net "p" with
      | Emmver.Proved _ -> ()
      | c ->
        Alcotest.failf "%s: expected proof, got %s"
          (Emmver.method_to_string method_)
          (Format.asprintf "%a" Emmver.pp_conclusion c))
    [ Emmver.Emm_bmc; Emmver.Explicit_bmc; Emmver.Bdd_reach ]

let test_methods_agree_on_bug () =
  let net = Designs.Fifo.build ~buggy:true Designs.Fifo.default_config in
  let depths =
    List.map
      (fun method_ ->
        match conclusion ~max_depth:8 method_ net "fifo_data" with
        | Emmver.Falsified { depth; genuine; _ } ->
          Alcotest.(check bool)
            (Emmver.method_to_string method_ ^ " genuine")
            true
            (genuine = Some true || genuine = None);
          depth
        | c ->
          Alcotest.failf "%s: expected bug, got %s"
            (Emmver.method_to_string method_)
            (Format.asprintf "%a" Emmver.pp_conclusion c))
      [ Emmver.Emm_bmc; Emmver.Emm_falsify; Emmver.Explicit_bmc; Emmver.Bdd_reach ]
  in
  match depths with
  | d :: rest -> List.iter (fun d' -> Alcotest.(check int) "same minimal depth" d d') rest
  | [] -> ()

let test_abstract_method_spurious () =
  let net = Designs.Multiport.build Designs.Multiport.default_config in
  match conclusion ~max_depth:10 Emmver.Abstract_bmc net "hit0" with
  | Emmver.Falsified { genuine = Some false; depth; _ } ->
    Alcotest.(check int) "pipeline depth" 7 depth
  | c ->
    Alcotest.failf "expected spurious counterexample, got %s"
      (Format.asprintf "%a" Emmver.pp_conclusion c)

let test_emm_pba_on_quicksort () =
  let net = Designs.Quicksort.build (Designs.Quicksort.default_config ~n:3) in
  let outcome =
    Emmver.verify ~options:(options 60) ~method_:Emmver.Emm_pba net ~property:"P2"
  in
  (match outcome.Emmver.conclusion with
  | Emmver.Proved _ -> ()
  | c -> Alcotest.failf "expected proof, got %s" (Format.asprintf "%a" Emmver.pp_conclusion c));
  match outcome.Emmver.abstraction with
  | Some a ->
    Alcotest.(check bool) "array abstracted" true
      (List.exists (fun m -> Netlist.memory_name m = "arr") a.Pba.abstracted_memories)
  | None -> Alcotest.fail "expected abstraction info"

let test_method_of_string () =
  List.iter
    (fun m ->
      match Emmver.method_of_string (Emmver.method_to_string m) with
      | Ok m' -> Alcotest.(check bool) "roundtrip" true (m = m')
      | Error e -> Alcotest.fail e)
    Emmver.all_methods;
  match Emmver.method_of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let test_timeout_inconclusive () =
  let net = Designs.Quicksort.build (Designs.Quicksort.default_config ~n:5) in
  let options = { Emmver.default_options with max_depth = 200; timeout_s = Some 0.2 } in
  match (Emmver.verify ~options ~method_:Emmver.Explicit_bmc net ~property:"P1").Emmver.conclusion with
  | Emmver.Inconclusive _ -> ()
  | c -> Alcotest.failf "expected timeout, got %s" (Format.asprintf "%a" Emmver.pp_conclusion c)

let test_race_found_and_replayed () =
  let net = Designs.Regfile.build ~dual_write:true Designs.Regfile.default_config in
  match Emm.find_data_race ~max_depth:4 net with
  | Some race ->
    Alcotest.(check string) "memory" "regfile" race.Emm.race_memory;
    Alcotest.(check int) "depth 0 suffices" 0 race.Emm.race_depth
  | None -> Alcotest.fail "expected a race"

let test_no_race_single_port () =
  let net = Designs.Quicksort.build (Designs.Quicksort.default_config ~n:3) in
  Alcotest.(check bool) "single write port is race-free" true
    (Emm.find_data_race ~max_depth:6 net = None)

let test_no_race_when_unreachable () =
  (* Two write ports whose enables are mutually exclusive by construction. *)
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:2 ~init:Netlist.Zeros in
  let addr = Hdl.input ctx "addr" ~width:2 in
  let data = Hdl.input ctx "data" ~width:2 in
  let sel = Hdl.input_bit ctx "sel" in
  Hdl.write_port ctx mem ~addr ~data ~enable:sel;
  Hdl.write_port ctx mem ~addr ~data ~enable:(Netlist.not_ sel);
  let rd = Hdl.read_port ctx mem ~addr ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" Netlist.true_;
  Hdl.output ctx "rd" rd;
  let net = Hdl.netlist ctx in
  Alcotest.(check bool) "exclusive enables never race" true
    (Emm.find_data_race ~max_depth:4 net = None)

let () =
  Alcotest.run "emmver"
    [
      ( "unit",
        [
          Alcotest.test_case "methods agree on proof" `Quick test_methods_agree_on_proof;
          Alcotest.test_case "methods agree on bug" `Quick test_methods_agree_on_bug;
          Alcotest.test_case "abstract method spurious" `Quick
            test_abstract_method_spurious;
          Alcotest.test_case "emm-pba on quicksort" `Quick test_emm_pba_on_quicksort;
          Alcotest.test_case "method of string" `Quick test_method_of_string;
          Alcotest.test_case "timeout inconclusive" `Quick test_timeout_inconclusive;
          Alcotest.test_case "race found" `Quick test_race_found_and_replayed;
          Alcotest.test_case "no race single port" `Quick test_no_race_single_port;
          Alcotest.test_case "no race when unreachable" `Quick
            test_no_race_when_unreachable;
        ] );
    ]
