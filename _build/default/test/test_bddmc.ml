(* BDD model checker tests: agreement with known reachability facts and with
   the SAT-based engine, plus the blow-up guard on expanded memories. *)

let counter ~width ~bad =
  let ctx = Hdl.create () in
  let count = Hdl.reg ctx "count" ~width in
  Hdl.connect ctx count (Hdl.incr ctx count);
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx count bad));
  Hdl.netlist ctx

let test_unsafe_counter () =
  let net = counter ~width:3 ~bad:5 in
  let r = Bddmc.check net ~property:"p" in
  match r.Bddmc.verdict with
  | Bddmc.Unsafe steps -> Alcotest.(check int) "steps" 5 steps
  | _ -> Alcotest.fail "expected unsafe"

let test_safe_saturating () =
  let ctx = Hdl.create () in
  let count = Hdl.reg ctx "count" ~width:3 in
  let at_limit = Hdl.eq_const ctx count 4 in
  Hdl.connect ctx count (Hdl.mux2 ctx at_limit count (Hdl.incr ctx count));
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx count 6));
  let net = Hdl.netlist ctx in
  let r = Bddmc.check net ~property:"p" in
  match r.Bddmc.verdict with
  | Bddmc.Safe steps ->
    Alcotest.(check bool) "fixpoint within diameter" true (steps <= 6)
  | _ -> Alcotest.fail "expected safe"

let test_input_driven () =
  (* The bad state needs a specific input value on the way. *)
  let ctx = Hdl.create () in
  let d = Hdl.input ctx "d" ~width:3 in
  let seen = Hdl.reg_bit ctx "seen" in
  Hdl.connect_bit ctx seen
    (Netlist.or_ (Hdl.netlist ctx) seen (Hdl.eq_const ctx d 6));
  Hdl.assert_always ctx "p" (Netlist.not_ seen);
  let net = Hdl.netlist ctx in
  let r = Bddmc.check net ~property:"p" in
  match r.Bddmc.verdict with
  | Bddmc.Unsafe 1 -> ()
  | v -> Alcotest.failf "expected unsafe at 1, got %s" (Format.asprintf "%a" Bddmc.pp_verdict v)

let test_memory_rejected () =
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:2 ~init:Netlist.Zeros in
  let rd = Hdl.read_port ctx mem ~addr:(Hdl.zero ~width:2) ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" (Hdl.eq_const ctx rd 0);
  let net = Hdl.netlist ctx in
  Alcotest.check_raises "memories must be expanded"
    (Invalid_argument "Bddmc.check: netlist has memory modules; expand them first")
    (fun () -> ignore (Bddmc.check net ~property:"p"))

let test_expanded_memory_checks () =
  (* After explicit expansion, BDD reachability can prove a small memory
     property: a never-written zero memory always reads 0. *)
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:2 ~init:Netlist.Zeros in
  let ra = Hdl.input ctx "ra" ~width:2 in
  let rd = Hdl.read_port ctx mem ~addr:ra ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" (Hdl.eq_const ctx rd 0);
  let net = Explicitmem.expand (Hdl.netlist ctx) in
  let r = Bddmc.check net ~property:"p" in
  match r.Bddmc.verdict with
  | Bddmc.Safe _ -> ()
  | v -> Alcotest.failf "expected safe, got %s" (Format.asprintf "%a" Bddmc.pp_verdict v)

let test_node_limit_on_big_memory () =
  (* The paper's observation: explicit memory models blow the BDD engine up.
     A tight node budget turns that into a reported verdict. *)
  let cfg = Designs.Quicksort.default_config ~n:4 in
  let net = Explicitmem.expand (Designs.Quicksort.build cfg) in
  let r = Bddmc.check ~max_nodes:20_000 ~max_steps:50 net ~property:"P1" in
  match r.Bddmc.verdict with
  | Bddmc.Node_limit -> ()
  | v -> Alcotest.failf "expected node limit, got %s" (Format.asprintf "%a" Bddmc.pp_verdict v)

(* Agreement with BMC on random small counter thresholds. *)
let prop_agrees_with_bmc =
  QCheck2.Test.make ~count:20 ~name:"BDD reachability agrees with BMC"
    (QCheck2.Gen.int_range 1 10)
    (fun bad ->
      let net = counter ~width:3 ~bad in
      let bdd = Bddmc.check net ~property:"p" in
      let bmc = Bmc.Engine.check net ~property:"p" in
      match (bdd.Bddmc.verdict, bmc.Bmc.Engine.verdict) with
      | Bddmc.Unsafe d1, Bmc.Engine.Counterexample t -> d1 = t.Bmc.Trace.depth
      | Bddmc.Safe _, Bmc.Engine.Proof _ -> true
      | _ -> false)

let () =
  Alcotest.run "bddmc"
    [
      ( "unit",
        [
          Alcotest.test_case "unsafe counter" `Quick test_unsafe_counter;
          Alcotest.test_case "safe saturating" `Quick test_safe_saturating;
          Alcotest.test_case "input driven" `Quick test_input_driven;
          Alcotest.test_case "memory rejected" `Quick test_memory_rejected;
          Alcotest.test_case "expanded memory checks" `Quick test_expanded_memory_checks;
          Alcotest.test_case "node limit on big memory" `Quick
            test_node_limit_on_big_memory;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_agrees_with_bmc ]);
    ]
