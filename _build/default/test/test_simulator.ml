(* Simulator tests: memory timing semantics, initial-state plumbing, and a
   reference-model equivalence property for a memory under random traffic. *)

let bus_env assignments name =
  match String.index_opt name '[' with
  | None -> ( match List.assoc_opt name assignments with Some v -> v <> 0 | None -> false)
  | Some br ->
    let prefix = String.sub name 0 br in
    let idx = int_of_string (String.sub name (br + 1) (String.length name - br - 2)) in
    (match List.assoc_opt prefix assignments with
    | Some v -> (v lsr idx) land 1 = 1
    | None -> false)

let read_vector sim v =
  let w = ref 0 in
  Array.iteri (fun i s -> if Simulator.value sim s then w := !w lor (1 lsl i)) v;
  !w

(* A bare memory harness with one write and one read port. *)
let memory_harness ~init =
  let ctx = Hdl.create () in
  let wa = Hdl.input ctx "wa" ~width:2 in
  let wd = Hdl.input ctx "wd" ~width:4 in
  let we = Hdl.input_bit ctx "we" in
  let ra = Hdl.input ctx "ra" ~width:2 in
  let re = Hdl.input_bit ctx "re" in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:4 ~init in
  Hdl.write_port ctx mem ~addr:wa ~data:wd ~enable:we;
  let rd = Hdl.read_port ctx mem ~addr:ra ~enable:re in
  Hdl.output ctx "rd" rd;
  (Hdl.netlist ctx, mem, rd)

let test_read_before_write () =
  (* A same-cycle write must not be visible to the read (paper §2.3: "the new
     written data is available for read only after the current cycle"). *)
  let net, _, rd = memory_harness ~init:Netlist.Zeros in
  let sim = Simulator.create net in
  let step wa wd we ra =
    Simulator.step sim
      ~inputs:(bus_env [ ("wa", wa); ("wd", wd); ("we", Bool.to_int we); ("ra", ra); ("re", 1) ])
  in
  step 1 9 true 1;
  Alcotest.(check int) "read sees pre-write value" 0 (read_vector sim rd);
  step 1 0 false 1;
  Alcotest.(check int) "write visible next cycle" 9 (read_vector sim rd)

let test_disabled_read_is_zero () =
  let net, _, rd = memory_harness ~init:Netlist.Zeros in
  let sim = Simulator.create net in
  Simulator.step sim ~inputs:(bus_env [ ("wa", 0); ("wd", 7); ("we", 1); ("re", 0) ]);
  Alcotest.(check int) "disabled read drives 0" 0 (read_vector sim rd)

let test_initial_contents () =
  let net, mem, rd = memory_harness ~init:(Netlist.Words [| 1; 2; 3; 4 |]) in
  let sim = Simulator.create net in
  Simulator.step sim ~inputs:(bus_env [ ("ra", 2); ("re", 1) ]);
  Alcotest.(check int) "words init" 3 (read_vector sim rd);
  Alcotest.(check int) "mem_word observer" 4 (Simulator.mem_word sim mem 3)

let test_arbitrary_init_callback () =
  let net, _, rd = memory_harness ~init:Netlist.Arbitrary in
  let sim = Simulator.create ~mem_values:(fun _ a -> a + 10) net in
  Simulator.step sim ~inputs:(bus_env [ ("ra", 1); ("re", 1) ]);
  Alcotest.(check int) "callback value" 11 (read_vector sim rd)

let test_latch_arbitrary_init () =
  let ctx = Hdl.create () in
  let r = Hdl.reg ctx ~init:None "r" ~width:3 in
  Hdl.connect ctx r r;
  Hdl.output ctx "q" r;
  let net = Hdl.netlist ctx in
  let sim =
    Simulator.create ~latch_values:(fun l -> Netlist.latch_name net l = "r[1]") net
  in
  Simulator.step sim ~inputs:(fun _ -> false);
  Alcotest.(check int) "chosen init" 2 (read_vector sim r)

let test_combinational_cycle_detected () =
  (* An address that depends on the same memory's read data. *)
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:2 ~init:Netlist.Zeros in
  (* Tie the knot through a reference cell. *)
  let addr_src = ref (Hdl.zero ~width:2) in
  let rd =
    Hdl.read_port ctx mem
      ~addr:(Array.init 2 (fun i -> Netlist.input (Hdl.netlist ctx) (Printf.sprintf "x%d" i)))
      ~enable:Netlist.true_
  in
  ignore addr_src;
  (* Second port whose address is its own output: a genuine cycle. *)
  let rd2_holder = Hdl.read_port ctx mem ~addr:(Hdl.select rd ~hi:1 ~lo:0) ~enable:Netlist.true_ in
  ignore rd2_holder;
  (* rd2 depends on rd which is fine; now force a true self-cycle via netlist
     surgery is not possible through the API, so instead check that the legal
     chain above simulates. *)
  Hdl.output ctx "rd2" rd2_holder;
  let sim = Simulator.create (Hdl.netlist ctx) in
  Simulator.step sim ~inputs:(fun _ -> false);
  Alcotest.(check int) "chained reads evaluate" 0 (read_vector sim rd2_holder)

let test_cycle_counter () =
  let ctx = Hdl.create () in
  let r = Hdl.reg ctx "r" ~width:4 in
  Hdl.connect ctx r (Hdl.incr ctx r);
  Hdl.output ctx "q" r;
  let sim = Simulator.create (Hdl.netlist ctx) in
  for _ = 1 to 5 do
    Simulator.step sim ~inputs:(fun _ -> false)
  done;
  Alcotest.(check int) "five steps" 5 (Simulator.cycle sim);
  Alcotest.(check int) "counter at 4 during 5th cycle" 4 (read_vector sim r)

let test_value_before_step_rejected () =
  let ctx = Hdl.create () in
  let r = Hdl.reg ctx "r" ~width:1 in
  Hdl.connect ctx r r;
  let sim = Simulator.create (Hdl.netlist ctx) in
  Alcotest.check_raises "no cycle yet"
    (Invalid_argument "Simulator.value: no step evaluated yet") (fun () ->
      ignore (Simulator.value sim r.(0)))

(* Random traffic against a reference functional memory. *)
let prop_memory_reference =
  QCheck2.Test.make ~count:100 ~name:"simulated memory = reference model"
    QCheck2.Gen.(
      list_size (int_range 1 12)
        (quad (int_bound 3) (int_bound 15) bool (int_bound 3)))
    (fun ops ->
      let net, _, rd = memory_harness ~init:Netlist.Zeros in
      let sim = Simulator.create net in
      let reference = Array.make 4 0 in
      List.for_all
        (fun (wa, wd, we, ra) ->
          Simulator.step sim
            ~inputs:
              (bus_env
                 [ ("wa", wa); ("wd", wd); ("we", Bool.to_int we); ("ra", ra); ("re", 1) ]);
          let expected = reference.(ra) in
          if we then reference.(wa) <- wd;
          read_vector sim rd = expected)
        ops)

let () =
  Alcotest.run "simulator"
    [
      ( "unit",
        [
          Alcotest.test_case "read before write" `Quick test_read_before_write;
          Alcotest.test_case "disabled read is zero" `Quick test_disabled_read_is_zero;
          Alcotest.test_case "initial contents" `Quick test_initial_contents;
          Alcotest.test_case "arbitrary init callback" `Quick test_arbitrary_init_callback;
          Alcotest.test_case "latch arbitrary init" `Quick test_latch_arbitrary_init;
          Alcotest.test_case "chained memory reads" `Quick
            test_combinational_cycle_detected;
          Alcotest.test_case "cycle counter" `Quick test_cycle_counter;
          Alcotest.test_case "value before step rejected" `Quick
            test_value_before_step_rejected;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_memory_reference ]);
    ]
