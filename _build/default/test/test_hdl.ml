(* HDL tests: word-level operators against OCaml integer semantics, register
   and FSM behaviour, and width checking. *)

let bus_env assignments name =
  match String.index_opt name '[' with
  | None -> ( match List.assoc_opt name assignments with Some v -> v <> 0 | None -> false)
  | Some br ->
    let prefix = String.sub name 0 br in
    let idx = int_of_string (String.sub name (br + 1) (String.length name - br - 2)) in
    (match List.assoc_opt prefix assignments with
    | Some v -> (v lsr idx) land 1 = 1
    | None -> false)

let read_vector sim v =
  let w = ref 0 in
  Array.iteri (fun i s -> if Simulator.value sim s then w := !w lor (1 lsl i)) v;
  !w

(* Evaluate a binary word operation on concrete values. *)
let eval_binop ~width f a b =
  let ctx = Hdl.create () in
  let va = Hdl.input ctx "a" ~width in
  let vb = Hdl.input ctx "b" ~width in
  let out = f ctx va vb in
  Hdl.output ctx "r" out;
  let sim = Simulator.create (Hdl.netlist ctx) in
  Simulator.step sim ~inputs:(bus_env [ ("a", a); ("b", b) ]);
  read_vector sim out

let eval_predicate ~width f a b =
  let ctx = Hdl.create () in
  let va = Hdl.input ctx "a" ~width in
  let vb = Hdl.input ctx "b" ~width in
  let out = f ctx va vb in
  Hdl.output_bit ctx "r" out;
  let sim = Simulator.create (Hdl.netlist ctx) in
  Simulator.step sim ~inputs:(bus_env [ ("a", a); ("b", b) ]);
  Simulator.value sim out

let width = 6
let mask = (1 lsl width) - 1

let gen_pair = QCheck2.Gen.(pair (int_bound mask) (int_bound mask))

let prop_arith name f reference =
  QCheck2.Test.make ~count:100 ~name gen_pair (fun (a, b) ->
      eval_binop ~width f a b = reference a b land mask)

let prop_pred name f reference =
  QCheck2.Test.make ~count:100 ~name gen_pair (fun (a, b) ->
      eval_predicate ~width f a b = reference a b)

let arithmetic_properties =
  [
    prop_arith "add = (+) mod 2^w" Hdl.add (fun a b -> a + b);
    prop_arith "sub = (-) mod 2^w" Hdl.sub (fun a b -> a - b);
    prop_arith "and_v = land" Hdl.and_v ( land );
    prop_arith "or_v = lor" Hdl.or_v ( lor );
    prop_arith "xor_v = lxor" Hdl.xor_v ( lxor );
    prop_pred "eq = (=)" Hdl.eq ( = );
    prop_pred "neq = (<>)" Hdl.neq ( <> );
    prop_pred "lt = (<)" Hdl.lt ( < );
    prop_pred "le = (<=)" Hdl.le ( <= );
    prop_pred "gt = (>)" Hdl.gt ( > );
    prop_pred "ge = (>=)" Hdl.ge ( >= );
  ]

let prop_incr_decr =
  QCheck2.Test.make ~count:100 ~name:"incr/decr wrap around"
    (QCheck2.Gen.int_bound mask)
    (fun a ->
      eval_binop ~width (fun ctx v _ -> Hdl.incr ctx v) a 0 = (a + 1) land mask
      && eval_binop ~width (fun ctx v _ -> Hdl.decr ctx v) a 0 = (a - 1) land mask)

let prop_add_carry =
  QCheck2.Test.make ~count:100 ~name:"add carry out" gen_pair (fun (a, b) ->
      let ctx = Hdl.create () in
      let va = Hdl.input ctx "a" ~width in
      let vb = Hdl.input ctx "b" ~width in
      let sum, carry = Hdl.add_carry ctx va vb in
      Hdl.output ctx "s" sum;
      Hdl.output_bit ctx "c" carry;
      let sim = Simulator.create (Hdl.netlist ctx) in
      Simulator.step sim ~inputs:(bus_env [ ("a", a); ("b", b) ]);
      read_vector sim sum = (a + b) land mask
      && Simulator.value sim carry = (a + b > mask))

let prop_mux_select =
  QCheck2.Test.make ~count:100 ~name:"mux2 selects"
    QCheck2.Gen.(triple bool (int_bound mask) (int_bound mask))
    (fun (sel, a, b) ->
      let ctx = Hdl.create () in
      let s = Hdl.input_bit ctx "s" in
      let va = Hdl.input ctx "a" ~width in
      let vb = Hdl.input ctx "b" ~width in
      let out = Hdl.mux2 ctx s va vb in
      Hdl.output ctx "r" out;
      let sim = Simulator.create (Hdl.netlist ctx) in
      Simulator.step sim
        ~inputs:(bus_env [ ("s", Bool.to_int sel); ("a", a); ("b", b) ]);
      read_vector sim out = if sel then a else b)

let prop_shifts =
  QCheck2.Test.make ~count:100 ~name:"constant shifts"
    QCheck2.Gen.(pair (int_bound mask) (int_bound (width - 1)))
    (fun (a, k) ->
      eval_binop ~width (fun _ v _ -> Hdl.shift_left_const v k) a 0
      = (a lsl k) land mask
      && eval_binop ~width (fun _ v _ -> Hdl.shift_right_const v k) a 0 = a lsr k)

let prop_concat_select =
  QCheck2.Test.make ~count:100 ~name:"concat/select roundtrip" gen_pair
    (fun (a, b) ->
      let ctx = Hdl.create () in
      let va = Hdl.input ctx "a" ~width in
      let vb = Hdl.input ctx "b" ~width in
      let joined = Hdl.concat va vb in
      let lo = Hdl.select joined ~hi:(width - 1) ~lo:0 in
      let hi = Hdl.select joined ~hi:((2 * width) - 1) ~lo:width in
      Hdl.output ctx "lo" lo;
      Hdl.output ctx "hi" hi;
      let sim = Simulator.create (Hdl.netlist ctx) in
      Simulator.step sim ~inputs:(bus_env [ ("a", a); ("b", b) ]);
      read_vector sim lo = a && read_vector sim hi = b)

let test_const () =
  Alcotest.(check int) "const width" 4 (Array.length (Hdl.const ~width:4 5));
  let ctx = Hdl.create () in
  ignore ctx;
  let v = Hdl.const ~width:4 5 in
  Alcotest.(check bool) "bit0" true (v.(0) = Netlist.true_);
  Alcotest.(check bool) "bit1" true (v.(1) = Netlist.false_);
  Alcotest.(check bool) "bit2" true (v.(2) = Netlist.true_)

let test_width_mismatch () =
  let ctx = Hdl.create () in
  let a = Hdl.input ctx "a" ~width:3 in
  let b = Hdl.input ctx "b" ~width:4 in
  Alcotest.check_raises "add widths"
    (Invalid_argument "Hdl.add: width mismatch (3 vs 4)") (fun () ->
      ignore (Hdl.add ctx a b))

let test_uresize () =
  let v = Hdl.const ~width:4 0b1010 in
  Alcotest.(check int) "extend" 6 (Array.length (Hdl.uresize v ~width:6));
  Alcotest.(check int) "truncate" 2 (Array.length (Hdl.uresize v ~width:2))

let test_register_pipeline () =
  let ctx = Hdl.create () in
  let d = Hdl.input ctx "d" ~width:4 in
  let r1 = Hdl.reg ctx "r1" ~width:4 in
  let r2 = Hdl.reg ctx "r2" ~width:4 in
  Hdl.connect ctx r1 d;
  Hdl.connect ctx r2 r1;
  Hdl.output ctx "q" r2;
  let sim = Simulator.create (Hdl.netlist ctx) in
  let feed v = Simulator.step sim ~inputs:(bus_env [ ("d", v) ]) in
  feed 5;
  Alcotest.(check int) "cycle 0" 0 (read_vector sim r2);
  feed 9;
  Alcotest.(check int) "cycle 1" 0 (read_vector sim r2);
  feed 0;
  Alcotest.(check int) "cycle 2 sees first value" 5 (read_vector sim r2);
  feed 0;
  Alcotest.(check int) "cycle 3 sees second value" 9 (read_vector sim r2)

let test_register_init () =
  let ctx = Hdl.create () in
  let r = Hdl.reg ctx ~init:(Some 11) "r" ~width:4 in
  Hdl.connect ctx r r;
  Hdl.output ctx "q" r;
  let sim = Simulator.create (Hdl.netlist ctx) in
  Simulator.step sim ~inputs:(fun _ -> false);
  Alcotest.(check int) "init value" 11 (read_vector sim r)

let test_fsm_walk () =
  let ctx = Hdl.create () in
  let go = Hdl.input_bit ctx "go" in
  let fsm = Hdl.Fsm.create ctx "st" ~states:[ "IDLE"; "RUN"; "DONE" ] in
  Hdl.Fsm.finalize fsm
    [
      (Netlist.and_ (Hdl.netlist ctx) (Hdl.Fsm.is fsm "IDLE") go, "RUN");
      (Hdl.Fsm.is fsm "RUN", "DONE");
      (Hdl.Fsm.is fsm "DONE", "DONE");
    ];
  Hdl.output_bit ctx "in_done" (Hdl.Fsm.is fsm "DONE");
  let sim = Simulator.create (Hdl.netlist ctx) in
  let step go_v = Simulator.step sim ~inputs:(fun n -> n = "go" && go_v) in
  step false;
  Alcotest.(check bool) "stays idle" true (Simulator.value sim (Hdl.Fsm.is fsm "IDLE"));
  step true;
  Alcotest.(check bool) "still idle this cycle" true
    (Simulator.value sim (Hdl.Fsm.is fsm "IDLE"));
  step false;
  Alcotest.(check bool) "run" true (Simulator.value sim (Hdl.Fsm.is fsm "RUN"));
  step false;
  Alcotest.(check bool) "done" true (Simulator.value sim (Hdl.Fsm.is fsm "DONE"))

let test_fsm_errors () =
  let ctx = Hdl.create () in
  let fsm = Hdl.Fsm.create ctx "st" ~states:[ "A"; "B" ] in
  Alcotest.check_raises "unknown state" (Invalid_argument "Fsm: unknown state C")
    (fun () -> ignore (Hdl.Fsm.is fsm "C"));
  Hdl.Fsm.finalize fsm [ (Hdl.Fsm.is fsm "A", "B") ];
  Alcotest.check_raises "double finalize"
    (Invalid_argument "Fsm.finalize: called twice") (fun () ->
      Hdl.Fsm.finalize fsm [])

let test_pmux_priority () =
  let ctx = Hdl.create () in
  let c1 = Hdl.input_bit ctx "c1" in
  let c2 = Hdl.input_bit ctx "c2" in
  let out =
    Hdl.pmux ctx
      [ (c1, Hdl.const ~width:4 1); (c2, Hdl.const ~width:4 2) ]
      ~default:(Hdl.const ~width:4 3)
  in
  Hdl.output ctx "r" out;
  let sim = Simulator.create (Hdl.netlist ctx) in
  let run c1v c2v =
    Simulator.step sim ~inputs:(fun n -> (n = "c1" && c1v) || (n = "c2" && c2v));
    read_vector sim out
  in
  Alcotest.(check int) "default" 3 (run false false);
  Alcotest.(check int) "second" 2 (run false true);
  Alcotest.(check int) "first wins" 1 (run true true)

let test_reduce () =
  let ctx = Hdl.create () in
  let v = Hdl.input ctx "v" ~width:4 in
  Hdl.output_bit ctx "any" (Hdl.reduce_or ctx v);
  Hdl.output_bit ctx "all" (Hdl.reduce_and ctx v);
  let sim = Simulator.create (Hdl.netlist ctx) in
  let run x =
    Simulator.step sim ~inputs:(bus_env [ ("v", x) ]);
    (Simulator.value sim (Hdl.reduce_or ctx v), Simulator.value sim (Hdl.reduce_and ctx v))
  in
  Alcotest.(check (pair bool bool)) "zero" (false, false) (run 0);
  Alcotest.(check (pair bool bool)) "partial" (true, false) (run 5);
  Alcotest.(check (pair bool bool)) "all ones" (true, true) (run 15)

let () =
  Alcotest.run "hdl"
    [
      ( "unit",
        [
          Alcotest.test_case "const" `Quick test_const;
          Alcotest.test_case "width mismatch" `Quick test_width_mismatch;
          Alcotest.test_case "uresize" `Quick test_uresize;
          Alcotest.test_case "register pipeline" `Quick test_register_pipeline;
          Alcotest.test_case "register init" `Quick test_register_init;
          Alcotest.test_case "fsm walk" `Quick test_fsm_walk;
          Alcotest.test_case "fsm errors" `Quick test_fsm_errors;
          Alcotest.test_case "pmux priority" `Quick test_pmux_priority;
          Alcotest.test_case "reduce or/and" `Quick test_reduce;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          (arithmetic_properties
          @ [
              prop_incr_decr; prop_add_carry; prop_mux_select; prop_shifts;
              prop_concat_select;
            ]) );
    ]
