(* BDD package tests: boolean laws, truth-table equivalence on random
   expressions, quantification, composition, and the node-budget guard. *)

type expr =
  | Var of int
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr
  | Const of bool

let rec eval_expr env = function
  | Var i -> env i
  | Not e -> not (eval_expr env e)
  | And (a, b) -> eval_expr env a && eval_expr env b
  | Or (a, b) -> eval_expr env a || eval_expr env b
  | Xor (a, b) -> eval_expr env a <> eval_expr env b
  | Const b -> b

let rec build_bdd m = function
  | Var i -> Bdd.var m i
  | Not e -> Bdd.not_ m (build_bdd m e)
  | And (a, b) -> Bdd.and_ m (build_bdd m a) (build_bdd m b)
  | Or (a, b) -> Bdd.or_ m (build_bdd m a) (build_bdd m b)
  | Xor (a, b) -> Bdd.xor_ m (build_bdd m a) (build_bdd m b)
  | Const true -> Bdd.tru m
  | Const false -> Bdd.fls m

let num_vars = 6

let gen_expr =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n <= 1 then
          oneof [ map (fun i -> Var i) (int_bound (num_vars - 1)); map (fun b -> Const b) bool ]
        else
          let sub = self (n / 2) in
          oneof
            [
              map (fun e -> Not e) (self (n - 1));
              map2 (fun a b -> And (a, b)) sub sub;
              map2 (fun a b -> Or (a, b)) sub sub;
              map2 (fun a b -> Xor (a, b)) sub sub;
            ]))

let env_of_int m i = (m lsr i) land 1 = 1

let forall_envs f =
  let rec go m = m >= 1 lsl num_vars || (f (env_of_int m) && go (m + 1)) in
  go 0

let prop_truth_table =
  QCheck2.Test.make ~count:200 ~name:"BDD equals truth table" gen_expr (fun e ->
      let m = Bdd.man () in
      let b = build_bdd m e in
      forall_envs (fun env -> Bdd.eval b env = eval_expr env e))

let prop_canonical =
  QCheck2.Test.make ~count:100 ~name:"equivalent expressions share the node"
    (QCheck2.Gen.pair gen_expr gen_expr)
    (fun (e1, e2) ->
      let m = Bdd.man () in
      let b1 = build_bdd m e1 and b2 = build_bdd m e2 in
      let equivalent = forall_envs (fun env -> eval_expr env e1 = eval_expr env e2) in
      Bdd.equal b1 b2 = equivalent)

let prop_de_morgan =
  QCheck2.Test.make ~count:100 ~name:"De Morgan" (QCheck2.Gen.pair gen_expr gen_expr)
    (fun (e1, e2) ->
      let m = Bdd.man () in
      let a = build_bdd m e1 and b = build_bdd m e2 in
      Bdd.equal (Bdd.not_ m (Bdd.and_ m a b)) (Bdd.or_ m (Bdd.not_ m a) (Bdd.not_ m b)))

let prop_exists_semantics =
  QCheck2.Test.make ~count:100 ~name:"exists v. f = f[v:=0] or f[v:=1]"
    QCheck2.Gen.(pair gen_expr (int_bound (num_vars - 1)))
    (fun (e, v) ->
      let m = Bdd.man () in
      let f = build_bdd m e in
      let quantified = Bdd.exists m [ v ] f in
      forall_envs (fun env ->
          let with_v value i = if i = v then value else env i in
          Bdd.eval quantified env
          = (eval_expr (with_v false) e || eval_expr (with_v true) e)))

let prop_compose_semantics =
  QCheck2.Test.make ~count:100 ~name:"compose substitutes"
    QCheck2.Gen.(triple gen_expr gen_expr (int_bound (num_vars - 1)))
    (fun (e, g, v) ->
      let m = Bdd.man () in
      let f = build_bdd m e in
      let gb = build_bdd m g in
      let composed = Bdd.compose m (fun i -> if i = v then Some gb else None) f in
      forall_envs (fun env ->
          let env' i = if i = v then eval_expr env g else env i in
          Bdd.eval composed env = eval_expr env' e))

let test_terminals () =
  let m = Bdd.man () in
  Alcotest.(check bool) "true" true (Bdd.is_true (Bdd.tru m));
  Alcotest.(check bool) "false" true (Bdd.is_false (Bdd.fls m));
  Alcotest.(check bool) "not true = false" true
    (Bdd.equal (Bdd.not_ m (Bdd.tru m)) (Bdd.fls m));
  Alcotest.(check int) "terminal size" 0 (Bdd.size (Bdd.tru m))

let test_var_basics () =
  let m = Bdd.man () in
  let x = Bdd.var m 0 in
  Alcotest.(check bool) "x & !x = false" true
    (Bdd.is_false (Bdd.and_ m x (Bdd.not_ m x)));
  Alcotest.(check bool) "x | !x = true" true (Bdd.is_true (Bdd.or_ m x (Bdd.not_ m x)));
  Alcotest.(check bool) "nvar" true (Bdd.equal (Bdd.nvar m 0) (Bdd.not_ m x));
  Alcotest.(check (list int)) "support" [ 0 ] (Bdd.support x)

let test_any_sat () =
  let m = Bdd.man () in
  let f = Bdd.and_ m (Bdd.var m 0) (Bdd.nvar m 2) in
  let assignment = Bdd.any_sat f in
  let env i = match List.assoc_opt i assignment with Some b -> b | None -> false in
  Alcotest.(check bool) "assignment satisfies" true (Bdd.eval f env);
  Alcotest.check_raises "false has no model" Not_found (fun () ->
      ignore (Bdd.any_sat (Bdd.fls m)))

let test_blowup_budget () =
  let m = Bdd.man ~max_nodes:16 () in
  Alcotest.check_raises "budget enforced" Bdd.Blowup (fun () ->
      (* An XOR chain needs a linear number of nodes > 16. *)
      let f = ref (Bdd.fls m) in
      for i = 0 to 30 do
        f := Bdd.xor_ m !f (Bdd.var m i)
      done)

let test_size_ordering_sensitivity () =
  (* (x0 & x1) | (x2 & x3): with the natural order this has 4 internal
     nodes. *)
  let m = Bdd.man () in
  let f =
    Bdd.or_ m
      (Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1))
      (Bdd.and_ m (Bdd.var m 2) (Bdd.var m 3))
  in
  Alcotest.(check int) "node count" 4 (Bdd.size f)

let () =
  Alcotest.run "bdd"
    [
      ( "unit",
        [
          Alcotest.test_case "terminals" `Quick test_terminals;
          Alcotest.test_case "variable basics" `Quick test_var_basics;
          Alcotest.test_case "any_sat" `Quick test_any_sat;
          Alcotest.test_case "node budget" `Quick test_blowup_budget;
          Alcotest.test_case "size" `Quick test_size_ordering_sensitivity;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_truth_table; prop_canonical; prop_de_morgan; prop_exists_semantics;
            prop_compose_semantics;
          ] );
    ]
