(* VCD export tests: structure of the emitted file and consistency with the
   trace being dumped. *)

let buggy_fifo_trace () =
  let net = Designs.Fifo.build ~buggy:true Designs.Fifo.default_config in
  let config = { Bmc.Engine.default_config with max_depth = 10; proof_checks = false } in
  let result, _ = Emm.check ~config net ~property:"fifo_data" in
  match result.Bmc.Engine.verdict with
  | Bmc.Engine.Counterexample t -> (net, t)
  | _ -> Alcotest.fail "expected counterexample"

let vcd_text () =
  let net, trace = buggy_fifo_trace () in
  let buf = Buffer.create 1024 in
  let path = Filename.temp_file "trace" ".vcd" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bmc.Vcd.write_file net trace path;
      let ic = open_in path in
      let n = in_channel_length ic in
      Buffer.add_string buf (really_input_string ic n);
      close_in ic);
  (net, trace, Buffer.contents buf)

let contains text needle =
  let nl = String.length needle and tl = String.length text in
  let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
  go 0

let test_header_sections () =
  let _, _, text = vcd_text () in
  List.iter
    (fun section ->
      Alcotest.(check bool) ("contains " ^ section) true (contains text section))
    [ "$timescale"; "$scope"; "$enddefinitions"; "$dumpvars"; "$var wire 1" ]

let test_declares_design_signals () =
  let _, _, text = vcd_text () in
  List.iter
    (fun name -> Alcotest.(check bool) ("declares " ^ name) true (contains text name))
    [ "push"; "pop"; "data_in[0]"; "wr_ptr[0]"; "prop.fifo_data"; "out.read_data[0]" ]

let test_one_timestep_per_frame () =
  let _, trace, text = vcd_text () in
  let count = ref 0 in
  String.split_on_char '\n' text
  |> List.iter (fun line -> if String.length line > 1 && line.[0] = '#' then incr count);
  (* depth+1 frames plus the closing timestamp *)
  Alcotest.(check int) "timestamps" (trace.Bmc.Trace.depth + 2) !count

let test_property_drops_at_failure () =
  (* The dumped property value must be 1 on all frames but fall to 0 at the
     failure frame. *)
  let net, trace, text = vcd_text () in
  ignore net;
  (* Find the identifier code assigned to prop.fifo_data. *)
  let code = ref None in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         match String.split_on_char ' ' line with
         | [ "$var"; "wire"; "1"; c; name; "$end" ] when name = "prop.fifo_data" ->
           code := Some c
         | _ -> ());
  let code = Option.get !code in
  (* Track its value changes across timestamps. *)
  let value = ref None in
  let at_failure = ref None in
  let current_time = ref (-1) in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if String.length line > 1 && line.[0] = '#' then
           current_time := int_of_string (String.sub line 1 (String.length line - 1))
         else if String.length line > 1 && String.sub line 1 (String.length line - 1) = code
         then begin
           value := Some (line.[0] = '1');
           if !current_time = trace.Bmc.Trace.depth * 10 then at_failure := !value
         end);
  Alcotest.(check (option bool)) "property false at failure frame" (Some false)
    (if !at_failure = None then !value else !at_failure)

let () =
  Alcotest.run "vcd"
    [
      ( "unit",
        [
          Alcotest.test_case "header sections" `Quick test_header_sections;
          Alcotest.test_case "declares design signals" `Quick test_declares_design_signals;
          Alcotest.test_case "one timestep per frame" `Quick test_one_timestep_per_frame;
          Alcotest.test_case "property drops at failure" `Quick
            test_property_drops_at_failure;
        ] );
    ]
