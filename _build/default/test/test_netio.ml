(* EMN serialization tests: behavioural round-trips through the simulator,
   format details, and error reporting. *)

let bus_env assignments name =
  match String.index_opt name '[' with
  | None -> ( match List.assoc_opt name assignments with Some v -> v <> 0 | None -> false)
  | Some br ->
    let prefix = String.sub name 0 br in
    let idx = int_of_string (String.sub name (br + 1) (String.length name - br - 2)) in
    (match List.assoc_opt prefix assignments with
    | Some v -> (v lsr idx) land 1 = 1
    | None -> false)

(* Behavioural equivalence under a shared stimulus: all outputs and
   properties agree cycle by cycle. *)
let simulate_both net1 net2 stimuli =
  let sim1 = Simulator.create net1 in
  let sim2 = Simulator.create net2 in
  List.for_all
    (fun assignments ->
      let env = bus_env assignments in
      Simulator.step sim1 ~inputs:env;
      Simulator.step sim2 ~inputs:env;
      List.for_all2
        (fun (n1, s1) (n2, s2) ->
          n1 = n2 && Simulator.value sim1 s1 = Simulator.value sim2 s2)
        (Netlist.outputs net1) (Netlist.outputs net2)
      && List.for_all2
           (fun (n1, s1) (n2, s2) ->
             n1 = n2 && Simulator.value sim1 s1 = Simulator.value sim2 s2)
           (Netlist.properties net1) (Netlist.properties net2))
    stimuli

let roundtrip net = Netio.of_string (Netio.to_string net)

let test_fifo_roundtrip () =
  let net = Designs.Fifo.build Designs.Fifo.default_config in
  let loaded = roundtrip net in
  let stimuli =
    List.init 12 (fun i ->
        [ ("push", (i / 2) land 1); ("pop", i land 1); ("data_in", (i * 5) land 15);
          ("watch", Bool.to_int (i = 3)) ])
  in
  Alcotest.(check bool) "behaviour preserved" true (simulate_both net loaded stimuli)

let test_quicksort_roundtrip () =
  (* Autonomous design with two memories and arbitrary initial state. *)
  let net = Designs.Quicksort.build (Designs.Quicksort.default_config ~n:3) in
  let loaded = roundtrip net in
  let stimuli = List.init 50 (fun _ -> []) in
  Alcotest.(check bool) "behaviour preserved" true (simulate_both net loaded stimuli);
  (* Memory structure preserved. *)
  let mems = Netlist.memories loaded in
  Alcotest.(check int) "two memories" 2 (List.length mems);
  let arr = List.find (fun m -> Netlist.memory_name m = "arr") mems in
  Alcotest.(check bool) "arbitrary init" true (Netlist.memory_init arr = Netlist.Arbitrary)

let test_multiport_roundtrip () =
  let net = Designs.Multiport.build Designs.Multiport.default_config in
  let loaded = roundtrip net in
  let m = List.hd (Netlist.memories loaded) in
  Alcotest.(check int) "three read ports" 3 (Netlist.num_read_ports m);
  Alcotest.(check int) "one write port" 1 (Netlist.num_write_ports m);
  let stimuli =
    List.init 20 (fun i -> [ ("wdata", i * 11); ("waddr", i); ("we", i land 1);
                             ("raddr0", i); ("raddr1", 63 - i); ("raddr2", 7) ])
  in
  Alcotest.(check bool) "behaviour preserved" true (simulate_both net loaded stimuli)

let test_words_init_roundtrip () =
  let ctx = Hdl.create () in
  let mem =
    Hdl.memory ctx ~name:"rom" ~addr_width:2 ~data_width:4
      ~init:(Netlist.Words [| 7; 3; 1; 9 |])
  in
  let ra = Hdl.input ctx "ra" ~width:2 in
  let rd = Hdl.read_port ctx mem ~addr:ra ~enable:Netlist.true_ in
  Hdl.output ctx "rd" rd;
  Hdl.assert_always ctx "p" Netlist.true_;
  let net = Hdl.netlist ctx in
  let loaded = roundtrip net in
  (match Netlist.memory_init (List.hd (Netlist.memories loaded)) with
  | Netlist.Words ws -> Alcotest.(check (array int)) "words" [| 7; 3; 1; 9 |] ws
  | _ -> Alcotest.fail "expected words init");
  let stimuli = List.init 4 (fun i -> [ ("ra", i) ]) in
  Alcotest.(check bool) "rom behaviour" true (simulate_both net loaded stimuli)

let test_format_header () =
  let net = Designs.Fifo.build Designs.Fifo.default_config in
  let text = Netio.to_string net in
  Alcotest.(check bool) "starts with magic" true
    (String.length text > 5 && String.sub text 0 5 = "emn 1")

let test_parse_errors () =
  let expect_failure text =
    match Netio.of_string text with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail "expected parse failure"
  in
  expect_failure "emn 2\n";
  expect_failure "emn 1\nnode 1 gadget x\n";
  expect_failure "emn 1\nnode 1 latch l 5\n";
  expect_failure "emn 1\nnode 1 and 5 6\n" (* forward reference *)

let test_comments_and_blanks () =
  let text = "emn 1\n# a comment\n\nnode 1 input a  # trailing\nproperty p !1\n" in
  let net = Netio.of_string text in
  Alcotest.(check int) "one property" 1 (List.length (Netlist.properties net));
  Alcotest.(check int) "one input" 1 (List.length (Netlist.inputs net))

let test_save_load_files () =
  let net = Designs.Regfile.build Designs.Regfile.default_config in
  let path = Filename.temp_file "emn_test" ".emn" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Netio.save net path;
      let loaded = Netio.load path in
      let stimuli =
        List.init 10 (fun i ->
            [ ("waddr", i); ("wdata", i * 3); ("we", 1); ("ra1", i); ("ra2", i) ])
      in
      Alcotest.(check bool) "file roundtrip" true (simulate_both net loaded stimuli))

(* Property: double round-trip is textually stable (fixpoint after one
   normalisation). *)
let prop_roundtrip_stable =
  QCheck2.Test.make ~count:20 ~name:"serialisation is a fixpoint"
    (QCheck2.Gen.int_range 2 5)
    (fun n ->
      let net = Designs.Memcpy.build (Designs.Memcpy.default_config ~n) in
      let once = Netio.to_string (Netio.of_string (Netio.to_string net)) in
      let twice = Netio.to_string (Netio.of_string once) in
      once = twice)

let () =
  Alcotest.run "netio"
    [
      ( "unit",
        [
          Alcotest.test_case "fifo roundtrip" `Quick test_fifo_roundtrip;
          Alcotest.test_case "quicksort roundtrip" `Quick test_quicksort_roundtrip;
          Alcotest.test_case "multiport roundtrip" `Quick test_multiport_roundtrip;
          Alcotest.test_case "words init roundtrip" `Quick test_words_init_roundtrip;
          Alcotest.test_case "format header" `Quick test_format_header;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
          Alcotest.test_case "save/load files" `Quick test_save_load_files;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_roundtrip_stable ]);
    ]
