(* Case-study design tests: functional validation by simulation (quicksort
   really sorts, the FIFO really queues, the filter computes the right
   pixels) and the verification facts the benchmarks rely on. *)

let bus_env assignments name =
  match String.index_opt name '[' with
  | None -> ( match List.assoc_opt name assignments with Some v -> v <> 0 | None -> false)
  | Some br ->
    let prefix = String.sub name 0 br in
    let idx = int_of_string (String.sub name (br + 1) (String.length name - br - 2)) in
    (match List.assoc_opt prefix assignments with
    | Some v -> (v lsr idx) land 1 = 1
    | None -> false)

let find_mem net name =
  List.find (fun m -> Netlist.memory_name m = name) (Netlist.memories net)

(* Word value of a bus output registered bit-by-bit as "name[i]". *)
let read_bus_output net sim name =
  let outs = Netlist.outputs net in
  let word = ref 0 in
  List.iter
    (fun (n, s) ->
      match String.index_opt n '[' with
      | Some br when String.sub n 0 br = name ->
        let idx = int_of_string (String.sub n (br + 1) (String.length n - br - 2)) in
        if Simulator.value sim s then word := !word lor (1 lsl idx)
      | Some _ | None -> ())
    outs;
  !word

(* {2 Quicksort} *)

let run_quicksort ?(buggy = false) cfg init_array =
  let net = Designs.Quicksort.build ~buggy cfg in
  let sim =
    Simulator.create
      ~mem_values:(fun m a ->
        if Netlist.memory_name m = "arr" && a < Array.length init_array then
          init_array.(a)
        else 0)
      net
  in
  let halted = List.assoc "halted" (Netlist.outputs net) in
  let steps = ref 0 in
  Simulator.step sim ~inputs:(fun _ -> false);
  incr steps;
  while (not (Simulator.value sim halted)) && !steps < 3000 do
    Simulator.step sim ~inputs:(fun _ -> false);
    incr steps
  done;
  let arr = find_mem net "arr" in
  (Array.init cfg.Designs.Quicksort.n (Simulator.mem_word sim arr), !steps)

let prop_quicksort_sorts =
  QCheck2.Test.make ~count:60 ~name:"quicksort machine sorts any array"
    QCheck2.Gen.(
      pair (int_range 2 6) (array_size (pure 6) (int_bound 255)))
    (fun (n, raw) ->
      let cfg = Designs.Quicksort.default_config ~n in
      let input = Array.sub raw 0 n in
      let sorted, _ = run_quicksort cfg input in
      Array.to_list sorted = List.sort compare (Array.to_list input))

let prop_buggy_quicksort_missorts =
  QCheck2.Test.make ~count:30 ~name:"buggy quicksort reverse-sorts"
    QCheck2.Gen.(array_size (pure 4) (int_bound 255))
    (fun input ->
      let cfg = Designs.Quicksort.default_config ~n:4 in
      let sorted, _ = run_quicksort ~buggy:true cfg input in
      (* The flipped comparison yields descending order. *)
      Array.to_list sorted = List.rev (List.sort compare (Array.to_list input)))

let test_quicksort_terminates_quickly () =
  let cfg = Designs.Quicksort.default_config ~n:5 in
  let _, steps = run_quicksort cfg [| 200; 3; 77; 77; 1 |] in
  Alcotest.(check bool) "bounded run" true (steps < 120)

let test_quicksort_config_validation () =
  Alcotest.check_raises "n too small" (Invalid_argument "Quicksort.build: need n >= 2")
    (fun () -> ignore (Designs.Quicksort.build (Designs.Quicksort.default_config ~n:1)));
  let cfg = { (Designs.Quicksort.default_config ~n:3) with Designs.Quicksort.addr_width = 1 } in
  Alcotest.check_raises "n too large" (Invalid_argument "Quicksort.build: n too large")
    (fun () -> ignore (Designs.Quicksort.build cfg))

(* {2 Bubble sort} *)

let run_bubblesort ?(buggy = false) cfg init_array =
  let net = Designs.Bubblesort.build ~buggy cfg in
  let sim =
    Simulator.create
      ~mem_values:(fun m a ->
        if Netlist.memory_name m = "arr" && a < Array.length init_array then
          init_array.(a)
        else 0)
      net
  in
  let halted = List.assoc "halted" (Netlist.outputs net) in
  Simulator.step sim ~inputs:(fun _ -> false);
  let steps = ref 1 in
  while (not (Simulator.value sim halted)) && !steps < 3000 do
    Simulator.step sim ~inputs:(fun _ -> false);
    incr steps
  done;
  let arr = find_mem net "arr" in
  (Array.init cfg.Designs.Bubblesort.n (Simulator.mem_word sim arr), !steps)

let prop_bubblesort_sorts =
  QCheck2.Test.make ~count:60 ~name:"bubble-sort machine sorts any array"
    QCheck2.Gen.(pair (int_range 2 6) (array_size (pure 6) (int_bound 255)))
    (fun (n, raw) ->
      let cfg = Designs.Bubblesort.default_config ~n in
      let input = Array.sub raw 0 n in
      let sorted, _ = run_bubblesort cfg input in
      Array.to_list sorted = List.sort compare (Array.to_list input))

let prop_buggy_bubblesort_missorts =
  QCheck2.Test.make ~count:30 ~name:"buggy bubble sort reverse-sorts"
    QCheck2.Gen.(array_size (pure 4) (int_bound 255))
    (fun input ->
      let cfg = Designs.Bubblesort.default_config ~n:4 in
      let sorted, _ = run_bubblesort ~buggy:true cfg input in
      Array.to_list sorted = List.rev (List.sort compare (Array.to_list input)))

(* {2 FIFO} *)

let prop_fifo_reference =
  QCheck2.Test.make ~count:80 ~name:"FIFO matches a queue model"
    QCheck2.Gen.(list_size (int_range 1 20) (triple bool bool (int_bound 15)))
    (fun ops ->
      let cfg = Designs.Fifo.default_config in
      let net = Designs.Fifo.build cfg in
      let sim = Simulator.create net in
      let queue = Queue.create () in
      let capacity = 1 lsl cfg.Designs.Fifo.addr_width in
      List.for_all
        (fun (push, pop, data) ->
          Simulator.step sim
            ~inputs:
              (bus_env
                 [ ("push", Bool.to_int push); ("pop", Bool.to_int pop); ("data_in", data) ]);
          (* Full/empty are judged on the state at the start of the cycle,
             exactly as the design samples them. *)
          let len0 = Queue.length queue in
          let popped = if pop && len0 > 0 then Some (Queue.pop queue) else None in
          if push && len0 < capacity then Queue.push data queue;
          (* Compare the read data on successful pops. *)
          match popped with
          | Some expected -> read_bus_output net sim "read_data" = expected
          | None -> true)
        ops)

let test_fifo_full_empty_flags () =
  let cfg = Designs.Fifo.default_config in
  let net = Designs.Fifo.build cfg in
  let sim = Simulator.create net in
  let full = List.assoc "full" (Netlist.outputs net) in
  let empty = List.assoc "empty" (Netlist.outputs net) in
  let step push pop =
    Simulator.step sim
      ~inputs:(bus_env [ ("push", Bool.to_int push); ("pop", Bool.to_int pop); ("data_in", 3) ])
  in
  step false false;
  Alcotest.(check bool) "starts empty" true (Simulator.value sim empty);
  for _ = 1 to 4 do
    step true false
  done;
  step false false;
  Alcotest.(check bool) "full after 4 pushes" true (Simulator.value sim full);
  for _ = 1 to 4 do
    step false true
  done;
  step false false;
  Alcotest.(check bool) "empty again" true (Simulator.value sim empty)

(* {2 Image filter} *)

let test_image_filter_pixels () =
  (* Feed constant rows and check the steady-state output formula. *)
  let cfg = { Designs.Image_filter.default_config with addr_width = 2 } in
  let net = Designs.Image_filter.build cfg in
  let sim = Simulator.create net in
  let row_len = 1 lsl cfg.Designs.Image_filter.addr_width in
  (* Three rows of constant pixels 100, then read the output. *)
  for _ = 1 to 3 * row_len do
    Simulator.step sim ~inputs:(bus_env [ ("pix", 100) ])
  done;
  (* (100 + 2*100 + (100 land 0x7f)) / 4 = 100 *)
  Alcotest.(check int) "steady state" 100 (read_bus_output net sim "filtered")

let test_image_filter_reachable_split () =
  let cfg = Designs.Image_filter.default_config in
  let reachable = Designs.Image_filter.reachable_values cfg in
  Alcotest.(check int) "206 reachable" 206 (List.length reachable);
  Alcotest.(check int) "216 total" 216 (List.length (Designs.Image_filter.property_names cfg))

(* {2 Multiport} *)

let test_multiport_memory_stays_zero () =
  let net = Designs.Multiport.build Designs.Multiport.default_config in
  let sim = Simulator.create net in
  let table = find_mem net "table" in
  (* Drive aggressive write traffic; the mask bug keeps contents at 0. *)
  for i = 0 to 60 do
    Simulator.step sim
      ~inputs:(bus_env [ ("wdata", 255); ("waddr", i land 63); ("we", 1) ])
  done;
  let all_zero = ref true in
  for a = 0 to 63 do
    if Simulator.mem_word sim table a <> 0 then all_zero := false
  done;
  Alcotest.(check bool) "memory never written non-zero" true !all_zero

let test_multiport_properties_hold_in_sim () =
  let net = Designs.Multiport.build Designs.Multiport.default_config in
  let sim = Simulator.create net in
  let props = List.map (fun (n, s) -> (n, s)) (Netlist.properties net) in
  for i = 0 to 40 do
    Simulator.step sim ~inputs:(bus_env [ ("wdata", i * 7); ("waddr", i); ("we", i land 1) ]);
    List.iter
      (fun (name, s) ->
        if not (Simulator.value sim s) then
          Alcotest.failf "property %s violated at cycle %d" name i)
      props
  done

(* {2 Memcpy} *)

let prop_memcpy_copies =
  QCheck2.Test.make ~count:40 ~name:"memcpy engine copies the source"
    QCheck2.Gen.(array_size (pure 6) (int_bound 255))
    (fun src_words ->
      let cfg = Designs.Memcpy.default_config ~n:6 in
      let net = Designs.Memcpy.build cfg in
      let sim =
        Simulator.create
          ~mem_values:(fun m a ->
            if Netlist.memory_name m = "src" && a < 6 then src_words.(a) else 0)
          net
      in
      let halted = List.assoc "halted" (Netlist.outputs net) in
      Simulator.step sim ~inputs:(fun _ -> false);
      let steps = ref 1 in
      while (not (Simulator.value sim halted)) && !steps < 200 do
        Simulator.step sim ~inputs:(fun _ -> false);
        incr steps
      done;
      let dst = find_mem net "dst" in
      List.for_all (fun a -> Simulator.mem_word sim dst a = src_words.(a))
        (List.init 6 Fun.id))

(* {2 Cache controller} *)

(* Drive the cache with a request sequence; returns the responses observed.
   Each request is (write, addr, data); None entries idle for one cycle. *)
let run_cache ?(buggy = false) reqs =
  let net = Designs.Cache.build ~buggy Designs.Cache.default_config in
  let sim = Simulator.create ~mem_values:(fun _ a -> (a * 3) land 15) net in
  let responding = List.assoc "responding" (Netlist.outputs net) in
  let responses = ref [] in
  let step env =
    Simulator.step sim ~inputs:env;
    if Simulator.value sim responding then
      responses := read_bus_output net sim "resp" :: !responses
  in
  List.iter
    (fun req ->
      (match req with
      | Some (write, addr, data) ->
        step
          (bus_env
             [ ("req_valid", 1); ("req_write", Bool.to_int write); ("req_addr", addr);
               ("req_wdata", data) ])
      | None -> step (bus_env []));
      (* Let the transaction drain: worst case LOOKUP/FILL_READ/FILL_WRITE/
         RESPOND. *)
      for _ = 1 to 4 do
        step (bus_env [])
      done)
    reqs;
  List.rev !responses

let test_cache_read_miss_then_hit () =
  (* First read fills from backing ((a*3) land 15); second read hits with the
     same value. *)
  let responses = run_cache [ Some (false, 5, 0); Some (false, 5, 0) ] in
  Alcotest.(check (list int)) "both reads agree" [ 15; 15 ] responses

let test_cache_write_then_read () =
  let responses = run_cache [ Some (false, 9, 0); Some (true, 9, 4); Some (false, 9, 0) ] in
  match responses with
  | [ _fill; after_write ] -> Alcotest.(check int) "write visible" 4 after_write
  | _ -> Alcotest.failf "expected 2 responses, got %d" (List.length responses)

let test_buggy_cache_serves_stale_data () =
  let responses =
    run_cache ~buggy:true [ Some (false, 9, 0); Some (true, 9, 4); Some (false, 9, 0) ]
  in
  match responses with
  | [ first_fill; after_write ] ->
    Alcotest.(check int) "stale hit" first_fill after_write;
    Alcotest.(check bool) "differs from written value" true (after_write <> 4)
  | _ -> Alcotest.failf "expected 2 responses, got %d" (List.length responses)

let test_cache_distinct_addresses_independent () =
  (* Two addresses mapping to different lines don't disturb each other. *)
  let responses =
    run_cache [ Some (true, 1, 7); Some (true, 2, 9); Some (false, 1, 0); Some (false, 2, 0) ]
  in
  Alcotest.(check (list int)) "each read returns its write" [ 7; 9 ] responses

let test_cache_conflict_eviction () =
  (* Addresses 3 and 7 share index 3 (2-bit index): a fill of one evicts the
     other, but write-through keeps the data correct. *)
  let responses =
    run_cache [ Some (true, 3, 5); Some (false, 7, 0); Some (false, 3, 0) ]
  in
  match responses with
  | [ _seven; three ] -> Alcotest.(check int) "post-eviction read correct" 5 three
  | _ -> Alcotest.failf "expected 2 responses, got %d" (List.length responses)

(* {2 Registry} *)

let test_registry_builds_everything () =
  List.iter
    (fun e ->
      let net = e.Designs.Registry.build () in
      Alcotest.(check bool)
        (e.Designs.Registry.name ^ " has properties")
        true
        (Netlist.properties net <> []))
    (Designs.Registry.all ())

let test_registry_lookup () =
  Alcotest.(check bool) "find" true
    ((Designs.Registry.find "fifo").Designs.Registry.name = "fifo");
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Designs.Registry.find "nonsense"))

let () =
  Alcotest.run "designs"
    [
      ( "unit",
        [
          Alcotest.test_case "quicksort terminates" `Quick test_quicksort_terminates_quickly;
          Alcotest.test_case "quicksort config validation" `Quick
            test_quicksort_config_validation;
          Alcotest.test_case "fifo flags" `Quick test_fifo_full_empty_flags;
          Alcotest.test_case "image filter pixels" `Quick test_image_filter_pixels;
          Alcotest.test_case "image filter 206/10 split" `Quick
            test_image_filter_reachable_split;
          Alcotest.test_case "multiport memory stays zero" `Quick
            test_multiport_memory_stays_zero;
          Alcotest.test_case "multiport properties in sim" `Quick
            test_multiport_properties_hold_in_sim;
          Alcotest.test_case "cache read miss then hit" `Quick
            test_cache_read_miss_then_hit;
          Alcotest.test_case "cache write then read" `Quick test_cache_write_then_read;
          Alcotest.test_case "buggy cache serves stale data" `Quick
            test_buggy_cache_serves_stale_data;
          Alcotest.test_case "cache distinct addresses" `Quick
            test_cache_distinct_addresses_independent;
          Alcotest.test_case "cache conflict eviction" `Quick test_cache_conflict_eviction;
          Alcotest.test_case "registry builds" `Quick test_registry_builds_everything;
          Alcotest.test_case "registry lookup" `Quick test_registry_lookup;
        ] );
      ( "property",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_quicksort_sorts; prop_buggy_quicksort_missorts; prop_bubblesort_sorts;
            prop_buggy_bubblesort_missorts; prop_fifo_reference; prop_memcpy_copies;
          ] );
    ]
