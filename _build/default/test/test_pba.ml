(* Proof-based abstraction tests: locality of latch reasons, memory-module
   abstraction (the paper's Table 2 phenomenon), soundness of proofs on the
   reduced model, and iterative abstraction. *)

(* Two counters plus a memory only one property cares about.  Counter [a]
   saturates at 5, so "a never reaches 7" holds and discovery keeps probing
   deeper instead of finding a counterexample. *)
let two_counter_design () =
  let ctx = Hdl.create () in
  let a = Hdl.reg ctx "a" ~width:3 in
  let a_limit = Hdl.eq_const ctx a 5 in
  Hdl.connect ctx a (Hdl.mux2 ctx a_limit a (Hdl.incr ctx a));
  let b = Hdl.reg ctx "b" ~width:3 in
  Hdl.connect ctx b (Hdl.incr ctx b);
  let mem = Hdl.memory ctx ~name:"mem" ~addr_width:2 ~data_width:2 ~init:Netlist.Zeros in
  let rd = Hdl.read_port ctx mem ~addr:(Hdl.select b ~hi:1 ~lo:0) ~enable:Netlist.true_ in
  let we = Hdl.input_bit ctx "we" in
  Hdl.write_port ctx mem ~addr:(Hdl.select a ~hi:1 ~lo:0)
    ~data:(Hdl.select a ~hi:1 ~lo:0) ~enable:we;
  Hdl.output ctx "rd" rd;
  Hdl.assert_always ctx "a_small" (Netlist.not_ (Hdl.eq_const ctx a 7));
  Hdl.assert_always ctx "rd_zero_or_written" Netlist.true_;
  Hdl.netlist ctx

let test_memory_abstracted_when_irrelevant () =
  let net = two_counter_design () in
  match Pba.discover ~max_depth:30 ~stability:5 net ~property:"a_small" with
  | Either.Right v ->
    Alcotest.failf "discovery concluded: %s" (Format.asprintf "%a" Bmc.Engine.pp_verdict v)
  | Either.Left a ->
    Alcotest.(check int) "memory abstracted" 0 (List.length a.Pba.modeled_memories);
    let kept_names = List.map (Netlist.latch_name net) a.Pba.kept_latches in
    Alcotest.(check bool) "a kept" true
      (List.exists (fun n -> String.length n > 0 && n.[0] = 'a') kept_names);
    Alcotest.(check bool) "b dropped" true
      (not (List.exists (fun n -> String.length n > 0 && n.[0] = 'b') kept_names))

let test_quicksort_p2_drops_array () =
  (* The paper's key Table-2 observation: P2 does not need the array. *)
  let net = Designs.Quicksort.build (Designs.Quicksort.default_config ~n:3) in
  match Pba.discover ~max_depth:60 ~stability:10 net ~property:"P2" with
  | Either.Right v ->
    Alcotest.failf "discovery concluded: %s" (Format.asprintf "%a" Bmc.Engine.pp_verdict v)
  | Either.Left a ->
    let names = List.map Netlist.memory_name a.Pba.abstracted_memories in
    Alcotest.(check bool) "array abstracted" true (List.mem "arr" names);
    let kept = List.map Netlist.memory_name a.Pba.modeled_memories in
    Alcotest.(check bool) "stack still modeled" true (List.mem "stack" kept);
    Alcotest.(check bool) "model shrank" true
      (List.length a.Pba.kept_latches < List.length (Netlist.latches net))

let test_reduced_model_proof () =
  let net = Designs.Quicksort.build (Designs.Quicksort.default_config ~n:3) in
  match Pba.discover ~max_depth:60 ~stability:10 net ~property:"P2" with
  | Either.Right _ -> Alcotest.fail "expected abstraction"
  | Either.Left a -> (
    let config = { Bmc.Engine.default_config with max_depth = 60 } in
    let result, _ = Pba.check_with_abstraction ~config net a ~property:"P2" in
    match result.Bmc.Engine.verdict with
    | Bmc.Engine.Proof _ -> ()
    | v ->
      Alcotest.failf "expected proof on reduced model, got %s"
        (Format.asprintf "%a" Bmc.Engine.pp_verdict v))

let test_discovery_detects_counterexample () =
  (* A falsifiable property concludes during discovery. *)
  let ctx = Hdl.create () in
  let c = Hdl.reg ctx "c" ~width:3 in
  Hdl.connect ctx c (Hdl.incr ctx c);
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx c 3));
  let net = Hdl.netlist ctx in
  match Pba.discover ~max_depth:30 ~stability:5 net ~property:"p" with
  | Either.Right (Bmc.Engine.Counterexample t) ->
    Alcotest.(check int) "depth" 3 t.Bmc.Trace.depth
  | _ -> Alcotest.fail "expected counterexample from discovery"

let test_memory_control_latches () =
  let net = two_counter_design () in
  let mem = List.hd (Netlist.memories net) in
  let names =
    List.map (Netlist.latch_name net) (Pba.memory_control_latches net mem)
  in
  (* Both counters drive the memory's ports (a the write address, b the read
     address). *)
  Alcotest.(check bool) "a is control" true (List.exists (fun n -> n.[0] = 'a') names);
  Alcotest.(check bool) "b is control" true (List.exists (fun n -> n.[0] = 'b') names)

let test_iterate_converges () =
  let net = Designs.Quicksort.build (Designs.Quicksort.default_config ~n:3) in
  match Pba.iterate ~rounds:3 ~max_depth:60 ~stability:8 net ~property:"P2" with
  | Either.Right _ -> Alcotest.fail "expected abstraction"
  | Either.Left a ->
    Alcotest.(check bool) "still drops the array" true
      (List.exists (fun m -> Netlist.memory_name m = "arr") a.Pba.abstracted_memories)

let test_explicit_discovery () =
  (* Latch-control criterion on the explicitly expanded model. *)
  let net = Explicitmem.expand (two_counter_design ()) in
  match Pba.discover ~max_depth:30 ~stability:5 ~use_emm:false net ~property:"a_small" with
  | Either.Right _ -> Alcotest.fail "expected abstraction"
  | Either.Left a ->
    let kept_names = List.map (Netlist.latch_name net) a.Pba.kept_latches in
    Alcotest.(check bool) "memory bits dropped" true
      (not (List.exists (fun n -> String.length n > 3 && String.sub n 0 3 = "mem") kept_names))

let () =
  Alcotest.run "pba"
    [
      ( "unit",
        [
          Alcotest.test_case "memory abstracted when irrelevant" `Quick
            test_memory_abstracted_when_irrelevant;
          Alcotest.test_case "quicksort P2 drops array" `Quick
            test_quicksort_p2_drops_array;
          Alcotest.test_case "reduced model proof" `Quick test_reduced_model_proof;
          Alcotest.test_case "discovery detects counterexample" `Quick
            test_discovery_detects_counterexample;
          Alcotest.test_case "memory control latches" `Quick test_memory_control_latches;
          Alcotest.test_case "iterate converges" `Quick test_iterate_converges;
          Alcotest.test_case "explicit discovery" `Quick test_explicit_discovery;
        ] );
    ]
