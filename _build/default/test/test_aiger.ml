(* AIGER interchange tests: behavioural round trips of expanded designs,
   header/symbol details, and bad-state property mapping. *)

let bus_env assignments name =
  match String.index_opt name '[' with
  | None -> ( match List.assoc_opt name assignments with Some v -> v <> 0 | None -> false)
  | Some br ->
    let prefix = String.sub name 0 br in
    let idx = int_of_string (String.sub name (br + 1) (String.length name - br - 2)) in
    (match List.assoc_opt prefix assignments with
    | Some v -> (v lsr idx) land 1 = 1
    | None -> false)

let simulate_both net1 net2 stimuli =
  let sim1 = Simulator.create net1 in
  let sim2 = Simulator.create net2 in
  List.for_all
    (fun assignments ->
      let env = bus_env assignments in
      Simulator.step sim1 ~inputs:env;
      Simulator.step sim2 ~inputs:env;
      List.for_all2
        (fun (n1, s1) (n2, s2) ->
          n1 = n2 && Simulator.value sim1 s1 = Simulator.value sim2 s2)
        (Netlist.outputs net1) (Netlist.outputs net2)
      && List.for_all2
           (fun (n1, s1) (n2, s2) ->
             n1 = n2 && Simulator.value sim1 s1 = Simulator.value sim2 s2)
           (Netlist.properties net1) (Netlist.properties net2))
    stimuli

let test_fifo_roundtrip () =
  let net = Explicitmem.expand (Designs.Fifo.build Designs.Fifo.default_config) in
  let loaded = Aiger.of_string (Aiger.to_string net) in
  let stimuli =
    List.init 15 (fun i ->
        [ ("push", (i / 3) land 1); ("pop", i land 1); ("data_in", (i * 7) land 15);
          ("watch", Bool.to_int (i = 2)) ])
  in
  Alcotest.(check bool) "behaviour preserved" true (simulate_both net loaded stimuli)

let test_memory_rejected () =
  let net = Designs.Fifo.build Designs.Fifo.default_config in
  Alcotest.check_raises "unexpanded memories rejected"
    (Invalid_argument "Aiger.to_string: netlist has memory modules; expand them first")
    (fun () -> ignore (Aiger.to_string net))

let test_header_counts () =
  let ctx = Hdl.create () in
  let a = Hdl.input_bit ctx "a" in
  let r = Hdl.reg_bit ctx "r" in
  Hdl.connect_bit ctx r (Netlist.and_ (Hdl.netlist ctx) a r);
  Hdl.output_bit ctx "o" r;
  Hdl.assert_always ctx "p" (Netlist.not_ r);
  let text = Aiger.to_string (Hdl.netlist ctx) in
  let header = List.hd (String.split_on_char '\n' text) in
  Alcotest.(check string) "header" "aag 3 1 1 1 1 1" header

let test_latch_inits () =
  let ctx = Hdl.create () in
  let r0 = Hdl.reg_bit ctx ~init:(Some false) "r0" in
  let r1 = Hdl.reg_bit ctx ~init:(Some true) "r1" in
  let rx = Hdl.reg_bit ctx ~init:None "rx" in
  Hdl.connect_bit ctx r0 r0;
  Hdl.connect_bit ctx r1 r1;
  Hdl.connect_bit ctx rx rx;
  let net = Hdl.netlist ctx in
  let loaded = Aiger.of_string (Aiger.to_string net) in
  let inits = List.map (Netlist.latch_init loaded) (Netlist.latches loaded) in
  Alcotest.(check bool) "inits preserved" true
    (inits = [ Some false; Some true; None ])

let test_property_as_bad_state () =
  let ctx = Hdl.create () in
  let r = Hdl.reg ctx "r" ~width:2 in
  Hdl.connect ctx r (Hdl.incr ctx r);
  Hdl.assert_always ctx "never3" (Netlist.not_ (Hdl.eq_const ctx r 3));
  let net = Hdl.netlist ctx in
  let loaded = Aiger.of_string (Aiger.to_string net) in
  Alcotest.(check (list string)) "property names" [ "never3" ]
    (List.map fst (Netlist.properties loaded));
  (* The counterexample depth survives the round trip. *)
  let r1 = Bmc.Engine.check net ~property:"never3" in
  let r2 = Bmc.Engine.check loaded ~property:"never3" in
  match (r1.Bmc.Engine.verdict, r2.Bmc.Engine.verdict) with
  | Bmc.Engine.Counterexample t1, Bmc.Engine.Counterexample t2 ->
    Alcotest.(check int) "same depth" t1.Bmc.Trace.depth t2.Bmc.Trace.depth
  | _ -> Alcotest.fail "expected counterexamples on both"

let test_plain_aiger_import () =
  (* A hand-written classic aag: output = latch that toggles. *)
  let text = "aag 1 0 1 1 0\n2 3\n2\nl0 toggle\no0 out\n" in
  let net = Aiger.of_string text in
  Alcotest.(check int) "one latch" 1 (List.length (Netlist.latches net));
  Alcotest.(check int) "one output" 1 (List.length (Netlist.outputs net));
  let sim = Simulator.create net in
  let out = List.assoc "out" (Netlist.outputs net) in
  Simulator.step sim ~inputs:(fun _ -> false);
  Alcotest.(check bool) "cycle 0" false (Simulator.value sim out);
  Simulator.step sim ~inputs:(fun _ -> false);
  Alcotest.(check bool) "cycle 1" true (Simulator.value sim out)

let test_outputs_are_bad () =
  let text = "aag 1 0 1 1 0\n2 2 1\n2\n" in
  (* A latch stuck at 1: as a bad-state output the property fails at 0. *)
  let net = Aiger.of_string ~outputs_are_bad:true text in
  match Netlist.properties net with
  | [ (_, _) ] -> (
    let r = Bmc.Engine.check net ~property:"o0" in
    match r.Bmc.Engine.verdict with
    | Bmc.Engine.Counterexample t -> Alcotest.(check int) "depth 0" 0 t.Bmc.Trace.depth
    | _ -> Alcotest.fail "expected counterexample")
  | _ -> Alcotest.fail "expected one property"

(* Round-trip property over the whole registry (expanded).  The first
   serialisation may renumber gates (the loader rebuilds them on demand), so
   stability is checked from the second round onwards. *)
let prop_registry_roundtrips =
  QCheck2.Test.make ~count:8 ~name:"expanded registry designs round-trip"
    (QCheck2.Gen.oneofl [ "fifo"; "regfile"; "multiport-rd0"; "memcpy" ])
    (fun name ->
      let net = Explicitmem.expand ((Designs.Registry.find name).Designs.Registry.build ()) in
      let once = Aiger.to_string (Aiger.of_string (Aiger.to_string net)) in
      let twice = Aiger.to_string (Aiger.of_string once) in
      once = twice)

let () =
  Alcotest.run "aiger"
    [
      ( "unit",
        [
          Alcotest.test_case "fifo roundtrip" `Quick test_fifo_roundtrip;
          Alcotest.test_case "memory rejected" `Quick test_memory_rejected;
          Alcotest.test_case "header counts" `Quick test_header_counts;
          Alcotest.test_case "latch inits" `Quick test_latch_inits;
          Alcotest.test_case "property as bad state" `Quick test_property_as_bad_state;
          Alcotest.test_case "plain aiger import" `Quick test_plain_aiger_import;
          Alcotest.test_case "outputs are bad" `Quick test_outputs_are_bad;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_registry_roundtrips ]);
    ]
