(* The paper's second industry case study, replayed end to end: auditing a
   multi-port lookup engine whose write path is dead.

     dune exec examples/memory_audit.exe

   The session follows §5 of the paper:
   1. abstracting the memory completely yields a spurious witness at the
      pipeline depth;
   2. EMM finds no witness within a deep bound;
   3. proof-based abstraction shrinks the model;
   4. the invariant G(WE=0 \/ WD=0) is proved by backward induction at
      depth 2;
   5. with the invariant applied (read data tied to 0) every property is
      proved by induction on a memory-free model. *)

let step = ref 0

let banner fmt =
  incr step;
  Format.printf "@.-- step %d: " !step;
  Format.kfprintf (fun ppf -> Format.fprintf ppf " --@.") Format.std_formatter fmt

let () =
  let cfg = Designs.Multiport.default_config in
  let net = Designs.Multiport.build cfg in
  Format.printf "== auditing the multi-port lookup engine ==@.";
  Format.printf "design: %a@." Netlist.pp_stats (Netlist.stats net);

  banner "check hit0 with the memory abstracted away";
  let options = { Emmver.default_options with max_depth = 30 } in
  let outcome = Emmver.verify ~options ~method_:Emmver.Abstract_bmc net ~property:"hit0" in
  Format.printf "%a@." Emmver.pp_conclusion outcome.Emmver.conclusion;

  banner "same check with EMM: the memory semantics rule the witness out";
  let outcome = Emmver.verify ~options ~method_:Emmver.Emm_falsify net ~property:"hit0" in
  Format.printf "%a@." Emmver.pp_conclusion outcome.Emmver.conclusion;

  banner "proof-based abstraction localises the property";
  (match
     Pba.discover ~max_depth:40 ~stability:10 net ~property:"hit0"
   with
  | Either.Left a -> Format.printf "%a@." (Pba.pp_abstraction net) a
  | Either.Right v -> Format.printf "discovery concluded: %a@." Bmc.Engine.pp_verdict v);

  banner "the write path looks dead; prove G(WE=0 or WD=0)";
  let outcome = Emmver.verify ~method_:Emmver.Emm_bmc net ~property:"mem_quiet" in
  Format.printf "%a@." Emmver.pp_conclusion outcome.Emmver.conclusion;

  banner "apply the invariant: tie read data to zero and prove all 8 properties";
  let reduced = Designs.Multiport.build ~rd_tied_zero:true cfg in
  List.iter
    (fun prop ->
      let outcome = Emmver.verify ~method_:Emmver.Emm_bmc reduced ~property:prop in
      Format.printf "%-6s %a@." prop Emmver.pp_conclusion outcome.Emmver.conclusion)
    Designs.Multiport.property_names
