(* Quickstart: build a small design with an embedded memory using the HDL,
   then verify it with EMM-based BMC.

     dune exec examples/quickstart.exe

   The design is a synchronous FIFO with a data-integrity scoreboard.  We
   first prove the occupancy bound on the correct FIFO, then let EMM find the
   overwrite bug in a broken variant and replay its counterexample on the
   cycle-accurate simulator. *)

let () =
  Format.printf "== quickstart: verifying a FIFO with EMM ==@.@.";
  let cfg = Designs.Fifo.default_config in
  let net = Designs.Fifo.build cfg in
  Format.printf "design: %a@." Netlist.pp_stats (Netlist.stats net);

  (* 1. Prove the occupancy bound with BMC-3 (EMM + induction). *)
  let outcome = Emmver.verify ~method_:Emmver.Emm_bmc net ~property:"fifo_count" in
  Format.printf "@.fifo_count on the correct FIFO: %a@." Emmver.pp_conclusion
    outcome.Emmver.conclusion;

  (* 2. Bounded check of data integrity: no bug within the depth budget. *)
  let options = { Emmver.default_options with max_depth = 10 } in
  let outcome =
    Emmver.verify ~options ~method_:Emmver.Emm_falsify net ~property:"fifo_data"
  in
  Format.printf "fifo_data on the correct FIFO: %a@." Emmver.pp_conclusion
    outcome.Emmver.conclusion;

  (* 3. The same check on a FIFO that accepts pushes when full. *)
  let buggy = Designs.Fifo.build ~buggy:true cfg in
  let outcome =
    Emmver.verify ~options ~method_:Emmver.Emm_falsify buggy ~property:"fifo_data"
  in
  Format.printf "@.fifo_data on the buggy FIFO: %a@." Emmver.pp_conclusion
    outcome.Emmver.conclusion;
  (match outcome.Emmver.conclusion with
  | Emmver.Falsified { trace = Some t; _ } ->
    Format.printf "@.%a@." Bmc.Trace.pp t;
    Format.printf "replay on the simulator confirms the bug: %b@."
      (Bmc.Trace.replay buggy t)
  | _ -> ());

  (* 4. Compare against explicit memory modeling: same verdict, bigger model. *)
  let emm = Emmver.verify ~options ~method_:Emmver.Emm_falsify buggy ~property:"fifo_data" in
  let exp = Emmver.verify ~options ~method_:Emmver.Explicit_bmc buggy ~property:"fifo_data" in
  Format.printf
    "@.model sizes for the same check — EMM: %d latches, %d clauses; explicit: %d latches, %d clauses@."
    emm.Emmver.model_latches emm.Emmver.model_clauses exp.Emmver.model_latches
    exp.Emmver.model_clauses
