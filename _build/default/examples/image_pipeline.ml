(* The paper's first industry case study: a low-pass image filter with two
   line-buffer memories and a large family of reachability properties.

     dune exec examples/image_pipeline.exe -- [how_many]

   For a sample of the output-value properties, EMM either finds a witness
   (the value is producible, most of the family) or proves unreachability by
   induction (values beyond the filter's range). *)

let () =
  let sample = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 12 in
  let cfg = { Designs.Image_filter.default_config with addr_width = 3 } in
  let net = Designs.Image_filter.build cfg in
  Format.printf "== image filter: %d-pixel line buffers, %d properties ==@."
    (1 lsl cfg.Designs.Image_filter.addr_width)
    cfg.Designs.Image_filter.num_properties;
  Format.printf "design: %a@.@." Netlist.pp_stats (Netlist.stats net);
  let names = Designs.Image_filter.property_names cfg in
  let total = List.length names in
  (* Sample evenly across the family so both witnesses and proofs show up. *)
  let picked =
    List.filteri (fun i _ -> i mod (max 1 (total / sample)) = 0 || i >= total - 3) names
  in
  let witnesses = ref 0 and proofs = ref 0 and max_depth = ref 0 in
  let options = { Emmver.default_options with max_depth = 40 } in
  List.iter
    (fun prop ->
      let outcome = Emmver.verify ~options ~method_:Emmver.Emm_bmc net ~property:prop in
      (match outcome.Emmver.conclusion with
      | Emmver.Falsified { depth; genuine; _ } ->
        incr witnesses;
        max_depth := max !max_depth depth;
        Format.printf "%-6s witness at depth %2d (genuine: %b)@." prop depth
          (genuine = Some true)
      | Emmver.Proved { depth; induction } ->
        incr proofs;
        Format.printf "%-6s unreachable — proved by %s at depth %d@." prop
          (if induction then "induction" else "diameter")
          depth
      | Emmver.Inconclusive msg -> Format.printf "%-6s inconclusive: %s@." prop msg))
    picked;
  Format.printf
    "@.%d properties sampled: %d witnesses (max depth %d), %d unreachability proofs@."
    (List.length picked) !witnesses !max_depth !proofs
