(* The paper's first case study: proving a quicksort implementation correct
   over memories with arbitrary initial contents.

     dune exec examples/quicksort_verify.exe -- [N]

   Proves P1 (sortedness of the first two elements) and P2 (well-formedness
   of the recursion-stack bounds) by the forward-diameter check of BMC-3,
   exactly as Table 1 of the paper, and then falsifies P1 on a variant with
   a flipped comparison. *)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 3 in
  Format.printf "== quicksort case study, N = %d ==@.@." n;
  let cfg = Designs.Quicksort.default_config ~n in
  let net = Designs.Quicksort.build cfg in
  Format.printf "design: %a@." Netlist.pp_stats (Netlist.stats net);
  Format.printf
    "memories: array AW=%d DW=%d, stack AW=%d DW=%d — both with ARBITRARY initial contents@.@."
    cfg.Designs.Quicksort.addr_width cfg.Designs.Quicksort.data_width
    cfg.Designs.Quicksort.stack_addr_width
    (2 * cfg.Designs.Quicksort.addr_width);

  let options = { Emmver.default_options with max_depth = 120 } in
  List.iter
    (fun prop ->
      let t0 = Unix.gettimeofday () in
      let outcome = Emmver.verify ~options ~method_:Emmver.Emm_bmc net ~property:prop in
      Format.printf "%s: %a  [%.1fs]@." prop Emmver.pp_conclusion
        outcome.Emmver.conclusion
        (Unix.gettimeofday () -. t0);
      match outcome.Emmver.emm_counts with
      | Some c -> Format.printf "   EMM constraints: %a@." Emm.pp_counts c
      | None -> ())
    [ "P1"; "P2" ];

  (* A quicksort with the partition comparison flipped does not sort; EMM
     finds a concrete array breaking P1 and the simulator confirms it. *)
  Format.printf "@.-- planted bug: flipped comparison --@.";
  let buggy = Designs.Quicksort.build ~buggy:true cfg in
  let options = { options with Emmver.max_depth = 60 } in
  let outcome = Emmver.verify ~options ~method_:Emmver.Emm_falsify buggy ~property:"P1" in
  Format.printf "P1 on the buggy design: %a@." Emmver.pp_conclusion
    outcome.Emmver.conclusion;
  match outcome.Emmver.conclusion with
  | Emmver.Falsified { trace = Some t; _ } ->
    Format.printf "initial array chosen by the solver:";
    List.iter
      (fun (m, words) ->
        if m = "arr" then
          List.iter (fun (a, w) -> Format.printf " [%d]=%d" a w) words)
      t.Bmc.Trace.mem_init;
    Format.printf "@."
  | _ -> ()
