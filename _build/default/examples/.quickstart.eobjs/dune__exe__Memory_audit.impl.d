examples/memory_audit.ml: Bmc Designs Either Emmver Format List Netlist Pba
