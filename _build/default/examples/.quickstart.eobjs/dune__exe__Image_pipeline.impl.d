examples/image_pipeline.ml: Array Designs Emmver Format List Netlist Sys
