examples/quickstart.ml: Bmc Designs Emmver Format Netlist
