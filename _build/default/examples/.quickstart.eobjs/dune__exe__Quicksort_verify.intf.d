examples/quicksort_verify.mli:
