examples/memory_audit.mli:
