examples/quicksort_verify.ml: Array Bmc Designs Emm Emmver Format List Netlist Sys Unix
