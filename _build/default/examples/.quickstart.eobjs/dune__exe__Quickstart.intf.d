examples/quickstart.mli:
